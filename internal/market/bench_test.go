package market

// Benchmarks for the market fast path, sized like the headline
// servebench scenario: a 10k-owner market queried with 64-owner support.

import (
	"testing"

	"datamarket/internal/feature"
	"datamarket/internal/linalg"
	"datamarket/internal/pricing"
	"datamarket/internal/privacy"
	"datamarket/internal/randx"
)

const (
	benchOwners  = 10000
	benchSupport = 64
	benchDim     = 10
)

func benchBroker(b *testing.B, cacheSize int) *Broker {
	b.Helper()
	r := randx.New(71)
	contract, err := privacy.NewTanhContract(1, 2)
	if err != nil {
		b.Fatal(err)
	}
	pop := make([]Owner, benchOwners)
	for i := range pop {
		pop[i] = Owner{ID: i, Value: r.Uniform(0.5, 5), Range: 1, Contract: contract}
	}
	mech, err := pricing.New(benchDim, 2*linalg.Vector{float64(benchDim)}.Norm2(),
		pricing.WithReserve(),
		pricing.WithThreshold(pricing.DefaultThreshold(benchDim, 1<<20, 0)))
	if err != nil {
		b.Fatal(err)
	}
	br, err := NewBroker(Config{
		Owners: pop, Mechanism: pricing.NewSync(mech), FeatureDim: benchDim,
		Seed: 7, QuoteCacheSize: cacheSize, LedgerPrealloc: 1 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	return br
}

func benchQuery(b *testing.B, r *randx.RNG) *privacy.LinearQuery {
	b.Helper()
	weights := make(linalg.Vector, benchOwners)
	for _, i := range r.Perm(benchOwners)[:benchSupport] {
		weights[i] = r.Normal(0, 1)
	}
	q, err := privacy.NewLinearQuery(weights, 1)
	if err != nil {
		b.Fatal(err)
	}
	return q
}

// BenchmarkPrepareDenseReference is the seed pipeline the sparse path
// replaced: dense leakages and compensations over all 10k owners, plus a
// clone-and-sort aggregation, per call.
func BenchmarkPrepareDenseReference(b *testing.B) {
	br := benchBroker(b, -1)
	q := benchQuery(b, randx.New(72))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		leak, err := q.Leakages(br.ranges)
		if err != nil {
			b.Fatal(err)
		}
		comps, err := privacy.Compensations(leak, br.contracts)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, _, err := feature.CompensationFeatures(comps, br.featureDim); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrepareInto is the sparse zero-alloc fast path over the same
// market and query shape.
func BenchmarkPrepareInto(b *testing.B) {
	br := benchBroker(b, -1)
	q := benchQuery(b, randx.New(72))
	ctx := new(QuoteContext)
	if err := br.PrepareInto(ctx, q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := br.PrepareInto(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTradeSequential trades one query at a time — the pre-batch
// serving pattern: two lock handoffs per round.
func BenchmarkTradeSequential(b *testing.B) {
	br := benchBroker(b, -1)
	r := randx.New(73)
	queries := make([]Query, 256)
	for i := range queries {
		queries[i] = Query{Q: benchQuery(b, r), Valuation: r.Uniform(0, 10)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := br.Trade(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTradeBatch trades 64-round batches: parallel prepare, one
// pricing lock, one books lock.
func BenchmarkTradeBatch(b *testing.B) {
	const batch = 64
	br := benchBroker(b, -1)
	r := randx.New(74)
	queries := make([]Query, batch)
	for i := range queries {
		queries[i] = Query{Q: benchQuery(b, r), Valuation: r.Uniform(0, 10)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, o := range br.TradeBatchOutcomes(queries) {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
		}
	}
}

// BenchmarkTradeCached trades a repeated query through the quote cache:
// the steady state for consumers resubmitting the same query shape.
func BenchmarkTradeCached(b *testing.B) {
	br := benchBroker(b, DefaultQuoteCacheSize)
	r := randx.New(75)
	query := Query{Q: benchQuery(b, r), Valuation: 10}
	if _, err := br.Trade(query); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := br.Trade(query); err != nil {
			b.Fatal(err)
		}
	}
}
