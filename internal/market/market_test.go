package market

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"datamarket/internal/linalg"
	"datamarket/internal/pricing"
	"datamarket/internal/privacy"
	"datamarket/internal/randx"
)

// testOwners builds a small owner population with tanh contracts.
func testOwners(t *testing.T, n int, seed uint64) []Owner {
	t.Helper()
	r := randx.New(seed)
	contract, err := privacy.NewTanhContract(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	owners := make([]Owner, n)
	for i := range owners {
		owners[i] = Owner{
			ID:       i,
			Value:    r.Uniform(0.5, 5),
			Range:    1,
			Contract: contract,
		}
	}
	return owners
}

func testMechanism(t *testing.T, n int, T int) *pricing.Mechanism {
	t.Helper()
	m, err := pricing.New(n, 2*math.Sqrt(float64(n)),
		pricing.WithReserve(),
		pricing.WithThreshold(pricing.DefaultThreshold(n, T, 0)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewBrokerValidation(t *testing.T) {
	owners := testOwners(t, 10, 1)
	mech := testMechanism(t, 4, 100)
	if _, err := NewBroker(Config{Mechanism: mech, FeatureDim: 4}); err == nil {
		t.Fatal("expected no-owners error")
	}
	if _, err := NewBroker(Config{Owners: owners, FeatureDim: 4}); err == nil {
		t.Fatal("expected no-mechanism error")
	}
	if _, err := NewBroker(Config{Owners: owners, Mechanism: mech, FeatureDim: 0}); err == nil {
		t.Fatal("expected feature-dim error")
	}
	if _, err := NewBroker(Config{Owners: owners, Mechanism: mech, FeatureDim: 99}); err == nil {
		t.Fatal("expected feature-dim too large error")
	}
	bad := testOwners(t, 2, 2)
	bad[1].Range = -1
	if _, err := NewBroker(Config{Owners: bad, Mechanism: mech, FeatureDim: 1}); err == nil {
		t.Fatal("expected negative-range error")
	}
	bad2 := testOwners(t, 2, 3)
	bad2[0].Contract = nil
	if _, err := NewBroker(Config{Owners: bad2, Mechanism: mech, FeatureDim: 1}); err == nil {
		t.Fatal("expected nil-contract error")
	}
	b, err := NewBroker(Config{Owners: owners, Mechanism: mech, FeatureDim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if b.Owners() != 10 || b.FeatureDim() != 4 {
		t.Fatalf("accessors: %d %d", b.Owners(), b.FeatureDim())
	}
}

func TestPreparePipeline(t *testing.T) {
	owners := testOwners(t, 20, 4)
	mech := testMechanism(t, 5, 100)
	b, err := NewBroker(Config{Owners: owners, Mechanism: mech, FeatureDim: 5})
	if err != nil {
		t.Fatal(err)
	}
	r := randx.New(5)
	q, err := privacy.NewLinearQuery(r.NormalVector(20, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := b.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ctx.Features) != 5 {
		t.Fatalf("feature dim %d", len(ctx.Features))
	}
	if math.Abs(ctx.Features.Norm2()-1) > 1e-9 {
		t.Fatalf("features not normalized: %v", ctx.Features.Norm2())
	}
	if math.Abs(ctx.Reserve-ctx.Features.Sum()) > 1e-12 {
		t.Fatalf("reserve %v != feature sum %v", ctx.Reserve, ctx.Features.Sum())
	}
	// Compensation ordering: features are sums of sorted compensations, so
	// they must be non-decreasing across partitions.
	for i := 1; i < len(ctx.Features); i++ {
		if ctx.Features[i] < ctx.Features[i-1]-1e-12 {
			t.Fatalf("aggregated features not sorted: %v", ctx.Features)
		}
	}
	if ctx.Leakages.Min() < 0 || ctx.Compensations.Min() < 0 {
		t.Fatal("negative leakage or compensation")
	}
}

func TestTradeFullLoop(t *testing.T) {
	const (
		owners = 50
		n      = 5
		T      = 2000
	)
	ownerPop := testOwners(t, owners, 6)
	mech := testMechanism(t, n, T)
	b, err := NewBroker(Config{Owners: ownerPop, Mechanism: mech, FeatureDim: n, Seed: 7, KeepRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	r0 := randx.New(8)
	theta := r0.NormalVector(n, 1)
	for i := range theta {
		theta[i] = math.Abs(theta[i])
	}
	theta.Normalize()
	theta.Scale(math.Sqrt(2 * float64(n)))
	cm, err := NewConsumerModel(ConsumerConfig{
		Owners: ownerPop, FeatureDim: n, Theta: theta,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(9)
	var sold int
	for i := 0; i < T; i++ {
		q, err := cm.NextQuery(rng)
		if err != nil {
			t.Fatal(err)
		}
		tx, err := b.Trade(q)
		if err != nil {
			t.Fatal(err)
		}
		if tx.Sold {
			sold++
			if tx.Posted < tx.Reserve-1e-9 {
				t.Fatalf("round %d: sold below reserve: %v < %v", i, tx.Posted, tx.Reserve)
			}
			if tx.Profit < -1e-9 {
				t.Fatalf("round %d: negative profit %v", i, tx.Profit)
			}
		}
		if tx.Regret < 0 {
			t.Fatalf("round %d: negative regret", i)
		}
	}
	if sold == 0 {
		t.Fatal("no sales in the whole run")
	}
	if len(b.Ledger()) != T {
		t.Fatalf("ledger has %d entries", len(b.Ledger()))
	}
	if b.TotalProfit() < 0 {
		t.Fatalf("negative total profit %v", b.TotalProfit())
	}
	if b.TotalRevenue() <= 0 {
		t.Fatalf("no revenue: %v", b.TotalRevenue())
	}
	// The regret ratio must be modest once the mechanism converges.
	if ratio := b.Tracker().RegretRatio(); ratio > 0.35 {
		t.Fatalf("regret ratio %v too high", ratio)
	}
	// Owner payouts sum to total compensation paid.
	var payoutSum float64
	for i := 0; i < owners; i++ {
		p, err := b.OwnerPayout(i)
		if err != nil {
			t.Fatal(err)
		}
		if p < 0 {
			t.Fatalf("owner %d negative payout", i)
		}
		payoutSum += p
	}
	var compSum float64
	for _, tx := range b.Ledger() {
		compSum += tx.Compensation
	}
	if math.Abs(payoutSum-compSum) > 1e-6*math.Max(1, compSum) {
		t.Fatalf("payouts %v != compensations %v", payoutSum, compSum)
	}
	if _, err := b.OwnerPayout(-1); err == nil {
		t.Fatal("expected payout range error")
	}
}

func TestConsumerModelValidation(t *testing.T) {
	owners := testOwners(t, 5, 10)
	if _, err := NewConsumerModel(ConsumerConfig{FeatureDim: 1, Theta: linalg.VectorOf(1)}); err == nil {
		t.Fatal("expected owners error")
	}
	if _, err := NewConsumerModel(ConsumerConfig{Owners: owners, FeatureDim: 0, Theta: nil}); err == nil {
		t.Fatal("expected dim error")
	}
	if _, err := NewConsumerModel(ConsumerConfig{Owners: owners, FeatureDim: 2, Theta: linalg.VectorOf(1)}); err == nil {
		t.Fatal("expected theta length error")
	}
	cm, err := NewConsumerModel(ConsumerConfig{Owners: owners, FeatureDim: 2, Theta: linalg.VectorOf(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if !cm.Theta().Equal(linalg.VectorOf(1, 1), 0) {
		t.Fatal("Theta accessor wrong")
	}
}

func TestConsumerQueriesAreDiverse(t *testing.T) {
	owners := testOwners(t, 30, 11)
	theta := linalg.Ones(3)
	for _, uniform := range []bool{false, true} {
		cm, err := NewConsumerModel(ConsumerConfig{
			Owners: owners, FeatureDim: 3, Theta: theta, UniformWeights: uniform,
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := randx.New(12)
		variances := map[float64]bool{}
		for i := 0; i < 200; i++ {
			q, err := cm.NextQuery(rng)
			if err != nil {
				t.Fatal(err)
			}
			variances[q.Q.NoiseVariance] = true
			if len(q.Q.Weights) != 30 {
				t.Fatalf("query over %d owners", len(q.Q.Weights))
			}
			if uniform && q.Q.Weights.NormInf() > 1 {
				t.Fatalf("uniform weights out of range: %v", q.Q.Weights.NormInf())
			}
			// Valuations derive from unit features with positive theta.
			if q.Valuation < 0 || q.Valuation > theta.Norm2()+1e-9 {
				t.Fatalf("valuation %v out of range", q.Valuation)
			}
		}
		// The noise-variance grid has 9 levels; a 200-draw sample must
		// hit most of them.
		if len(variances) < 5 {
			t.Fatalf("variance diversity too low: %d levels", len(variances))
		}
	}
}

func TestConsumerNoiseInjection(t *testing.T) {
	owners := testOwners(t, 10, 13)
	theta := linalg.Ones(2)
	noise, _ := randx.NewSubGaussianNoise(randx.NoiseNormal, 0.1)
	cm, err := NewConsumerModel(ConsumerConfig{
		Owners: owners, FeatureDim: 2, Theta: theta, Noise: noise,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With noise, repeated draws of structurally similar queries produce
	// valuations spread around the deterministic value.
	rng := randx.New(14)
	var vals []float64
	for i := 0; i < 200; i++ {
		q, err := cm.NextQuery(rng)
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, q.Valuation)
	}
	var outside int
	for _, v := range vals {
		if v < 0 || v > theta.Norm2() {
			outside++
		}
	}
	if outside == 0 {
		t.Fatal("noise appears to have no effect on valuations")
	}
}

// TestTradeConcurrent drives one broker from many goroutines through a
// SyncPoster-wrapped mechanism — the server-hosted configuration. Run
// with -race; it checks that the ledger, payouts, and mechanism counters
// stay consistent under concurrent trades.
func TestTradeConcurrent(t *testing.T) {
	const (
		owners  = 30
		n       = 4
		workers = 8
		perW    = 150
	)
	ownerPop := testOwners(t, owners, 20)
	mech := testMechanism(t, n, workers*perW)
	b, err := NewBroker(Config{
		Owners:      ownerPop,
		Mechanism:   pricing.NewSync(mech),
		FeatureDim:  n,
		Seed:        21,
		KeepRecords: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r0 := randx.New(22)
	theta := r0.NormalVector(n, 1)
	for i := range theta {
		theta[i] = math.Abs(theta[i])
	}
	theta.Normalize()
	theta.Scale(math.Sqrt(2 * float64(n)))
	cm, err := NewConsumerModel(ConsumerConfig{
		Owners: ownerPop, FeatureDim: n, Theta: theta,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-draw the queries: the consumer model RNG is not concurrent.
	rng := randx.New(23)
	queries := make([]Query, workers*perW)
	for i := range queries {
		q, err := cm.NextQuery(rng)
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = q
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w * perW; i < (w+1)*perW; i++ {
				tx, err := b.Trade(queries[i])
				if err != nil {
					errs <- err
					return
				}
				if tx.Sold && tx.Profit < -1e-9 {
					errs <- fmt.Errorf("round %d: negative profit %v", tx.Round, tx.Profit)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := len(b.Ledger()); got != workers*perW {
		t.Fatalf("ledger has %d entries, want %d", got, workers*perW)
	}
	c := mech.Counters()
	if c.Rounds != workers*perW {
		t.Fatalf("mechanism saw %d rounds, want %d", c.Rounds, workers*perW)
	}
	if c.Accepts+c.Rejects+c.Skips != c.Rounds {
		t.Fatalf("inconsistent counters under concurrency: %+v", c)
	}
	// Every ledger round index appears exactly once.
	seen := make([]bool, workers*perW+1)
	for _, tx := range b.Ledger() {
		if tx.Round < 1 || tx.Round > workers*perW || seen[tx.Round] {
			t.Fatalf("bad or duplicate round index %d", tx.Round)
		}
		seen[tx.Round] = true
	}
	if b.TotalProfit() < -1e-9 {
		t.Fatalf("negative total profit %v", b.TotalProfit())
	}
}

// TestSettleFailingAnswerLeavesBooksUntouched is the regression test for
// the settlement-ordering bug: when the query's answer fails after the
// consumer accepted, the broker must not have mutated any payout state —
// previously the owner payouts were credited before the answer was
// computed, leaving money on the books with no ledger entry behind it.
func TestSettleFailingAnswerLeavesBooksUntouched(t *testing.T) {
	ownerPop := testOwners(t, 10, 21)
	mech := testMechanism(t, 3, 100)
	b, err := NewBroker(Config{Owners: ownerPop, Mechanism: pricing.NewSync(mech), FeatureDim: 3, KeepRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	good, err := privacy.NewLinearQuery(randx.New(22).NormalVector(10, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := b.Prepare(good)
	if err != nil {
		t.Fatal(err)
	}
	// A query over the wrong owner count reaches settle only through this
	// direct call (Prepare would reject it), standing in for any answer
	// failure that strikes after the buyer accepted.
	broken, err := privacy.NewLinearQuery(randx.New(23).NormalVector(7, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	quote := pricing.Quote{Price: ctx.Reserve + 1, Decision: pricing.DecisionExploratory}
	if _, err := b.settle(Query{Q: broken, Valuation: 10}, ctx, quote, true); err == nil {
		t.Fatal("settle with a failing answer did not error")
	}
	for i := range ownerPop {
		p, err := b.OwnerPayout(i)
		if err != nil {
			t.Fatal(err)
		}
		if p != 0 {
			t.Fatalf("owner %d was paid %v by a failed settlement", i, p)
		}
	}
	if len(b.Ledger()) != 0 {
		t.Fatalf("failed settlement left %d ledger entries", len(b.Ledger()))
	}
	if b.Tracker().Rounds() != 0 {
		t.Fatalf("failed settlement recorded %d tracker rounds", b.Tracker().Rounds())
	}
}

// TestTradeBatchMatchesSequentialTrades checks that TradeBatch on a
// batch-capable mechanism produces exactly the ledger that the same
// query sequence produces through per-round Trade calls.
func TestTradeBatchMatchesSequentialTrades(t *testing.T) {
	const owners, n, T = 30, 4, 300
	newBroker := func() (*Broker, *ConsumerModel, *randx.RNG) {
		t.Helper()
		ownerPop := testOwners(t, owners, 31)
		b, err := NewBroker(Config{
			Owners: ownerPop, Mechanism: pricing.NewSync(testMechanism(t, n, T)),
			FeatureDim: n, Seed: 32, KeepRecords: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		theta := randx.New(33).NormalVector(n, 1)
		for i := range theta {
			theta[i] = math.Abs(theta[i])
		}
		theta.Normalize()
		theta.Scale(math.Sqrt(2 * float64(n)))
		cm, err := NewConsumerModel(ConsumerConfig{Owners: ownerPop, FeatureDim: n, Theta: theta})
		if err != nil {
			t.Fatal(err)
		}
		return b, cm, randx.New(34)
	}

	bSeq, cmSeq, rngSeq := newBroker()
	seqTxs := make([]Transaction, 0, T)
	for i := 0; i < T; i++ {
		q, err := cmSeq.NextQuery(rngSeq)
		if err != nil {
			t.Fatal(err)
		}
		tx, err := bSeq.Trade(q)
		if err != nil {
			t.Fatal(err)
		}
		seqTxs = append(seqTxs, tx)
	}

	bBatch, cmBatch, rngBatch := newBroker()
	queries := make([]Query, T)
	for i := range queries {
		q, err := cmBatch.NextQuery(rngBatch)
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = q
	}
	var batchTxs []Transaction
	for lo := 0; lo < T; lo += 64 {
		hi := lo + 64
		if hi > T {
			hi = T
		}
		txs, err := bBatch.TradeBatch(queries[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		batchTxs = append(batchTxs, txs...)
	}

	if len(batchTxs) != len(seqTxs) {
		t.Fatalf("batch produced %d transactions, sequential %d", len(batchTxs), len(seqTxs))
	}
	for i := range seqTxs {
		if batchTxs[i] != seqTxs[i] {
			t.Fatalf("transaction %d diverged:\nbatch      %+v\nsequential %+v", i, batchTxs[i], seqTxs[i])
		}
	}
	for i := 0; i < owners; i++ {
		ps, _ := bSeq.OwnerPayout(i)
		pb, _ := bBatch.OwnerPayout(i)
		if ps != pb {
			t.Fatalf("owner %d payout diverged: %v vs %v", i, pb, ps)
		}
	}
}

// TestTradeBatchFallback covers the non-batch poster path: a bare
// *Mechanism does not implement BatchRoundPoster, so TradeBatch must
// fall back to sequential trades and still fill the ledger.
func TestTradeBatchFallback(t *testing.T) {
	const owners, n, T = 20, 3, 50
	ownerPop := testOwners(t, owners, 41)
	b, err := NewBroker(Config{
		Owners: ownerPop, Mechanism: testMechanism(t, n, T),
		FeatureDim: n, Seed: 42, KeepRecords: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	theta := randx.New(43).NormalVector(n, 1)
	for i := range theta {
		theta[i] = math.Abs(theta[i])
	}
	theta.Normalize()
	theta.Scale(math.Sqrt(2 * float64(n)))
	cm, err := NewConsumerModel(ConsumerConfig{Owners: ownerPop, FeatureDim: n, Theta: theta})
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(44)
	queries := make([]Query, T)
	for i := range queries {
		q, err := cm.NextQuery(rng)
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = q
	}
	txs, err := b.TradeBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != T || len(b.Ledger()) != T {
		t.Fatalf("fallback batch: %d transactions, %d ledger entries, want %d", len(txs), len(b.Ledger()), T)
	}
}

// TestTradeBatchPartialFailure pins the uniform failure semantics of
// TradeBatch on both the batch and the fallback path: a query that
// fails to prepare mid-batch leaves no ledger entry, every other query
// still trades, and the joined error names the failure.
func TestTradeBatchPartialFailure(t *testing.T) {
	for _, tc := range []struct {
		name string
		mech func() pricing.Poster
	}{
		{"batch-poster", func() pricing.Poster { return pricing.NewSync(testMechanism(t, 2, 100)) }},
		{"fallback-poster", func() pricing.Poster { return testMechanism(t, 2, 100) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ownerPop := testOwners(t, 8, 51)
			b, err := NewBroker(Config{Owners: ownerPop, Mechanism: tc.mech(), FeatureDim: 2, Seed: 52, KeepRecords: true})
			if err != nil {
				t.Fatal(err)
			}
			good1, err := privacy.NewLinearQuery(randx.New(53).NormalVector(8, 1), 1)
			if err != nil {
				t.Fatal(err)
			}
			bad, err := privacy.NewLinearQuery(randx.New(54).NormalVector(5, 1), 1) // wrong owner count
			if err != nil {
				t.Fatal(err)
			}
			good2, err := privacy.NewLinearQuery(randx.New(55).NormalVector(8, 1), 1)
			if err != nil {
				t.Fatal(err)
			}
			txs, err := b.TradeBatch([]Query{
				{Q: good1, Valuation: 5},
				{Q: bad, Valuation: 5},
				{Q: good2, Valuation: 5},
			})
			if err == nil {
				t.Fatal("batch with a failing query returned no error")
			}
			if len(txs) != 2 {
				t.Fatalf("got %d transactions, want 2 (failed query skipped)", len(txs))
			}
			if len(b.Ledger()) != 2 {
				t.Fatalf("ledger has %d entries, want 2", len(b.Ledger()))
			}
		})
	}
}

// TestBrokerHostsEveryFamily drives the broker with a poster of each
// hosted pricing family behind SyncPoster, through both Trade and
// TradeBatch: the broker is mechanism-agnostic and only requires the
// RoundPoster/BatchRoundPoster interfaces.
func TestBrokerHostsEveryFamily(t *testing.T) {
	const owners, n, T = 20, 3, 120
	specs := map[pricing.Family]pricing.FamilySpec{
		pricing.FamilyLinear: {Family: pricing.FamilyLinear, Dim: n, Reserve: true, Threshold: 0.05},
		pricing.FamilyNonlinear: {Family: pricing.FamilyNonlinear, Dim: n, Reserve: true, Threshold: 0.05,
			Model: pricing.ModelConfig{Link: "exp"}},
		pricing.FamilySGD: {Family: pricing.FamilySGD, Dim: n, Reserve: true,
			Model: pricing.ModelConfig{Eta0: 0.5, Margin: 1.0}},
	}
	for fam, spec := range specs {
		fp, err := pricing.NewFamilyPoster(spec)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		ownerPop := testOwners(t, owners, 51)
		b, err := NewBroker(Config{
			Owners: ownerPop, Mechanism: pricing.NewSync(fp),
			FeatureDim: n, Seed: 52, KeepRecords: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		theta := randx.New(53).NormalVector(n, 1)
		for i := range theta {
			theta[i] = math.Abs(theta[i])
		}
		theta.Normalize()
		theta.Scale(math.Sqrt(2 * float64(n)))
		cm, err := NewConsumerModel(ConsumerConfig{Owners: ownerPop, FeatureDim: n, Theta: theta})
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		rng := randx.New(54)
		queries := make([]Query, T)
		for i := range queries {
			q, err := cm.NextQuery(rng)
			if err != nil {
				t.Fatalf("%s: %v", fam, err)
			}
			queries[i] = q
		}
		// Half through single trades, half through one batch.
		for i := 0; i < T/2; i++ {
			if _, err := b.Trade(queries[i]); err != nil {
				t.Fatalf("%s: trade %d: %v", fam, i, err)
			}
		}
		txs, err := b.TradeBatch(queries[T/2:])
		if err != nil {
			t.Fatalf("%s: TradeBatch: %v", fam, err)
		}
		if len(txs) != T-T/2 {
			t.Fatalf("%s: batch produced %d transactions", fam, len(txs))
		}
		ledger := b.Ledger()
		if len(ledger) != T {
			t.Fatalf("%s: ledger has %d rounds, want %d", fam, len(ledger), T)
		}
		// The reserve price constraint holds for every family: no sold
		// round loses money.
		for i, tx := range ledger {
			if tx.Sold && tx.Profit < -1e-9 {
				t.Fatalf("%s: round %d sold at a loss: %+v", fam, i, tx)
			}
		}
	}
}
