package market

import (
	"fmt"
	"math"

	"datamarket/internal/feature"
	"datamarket/internal/linalg"
	"datamarket/internal/privacy"
	"datamarket/internal/randx"
)

// ConsumerModel generates the online stream of data consumers of §V-A:
// each round a consumer customizes a noisy linear query (weights from
// N(0, I) or U[−1, 1], noise variance from {10^k : |k| ≤ 4}) and values
// the answer according to the hidden linear market value model
// v = xᵀθ* (+ δ), where x is the broker's compensation feature vector.
type ConsumerModel struct {
	owners     int
	featureDim int
	theta      linalg.Vector
	noise      *randx.SubGaussianNoise
	uniform    bool // query weights from U[−1,1] instead of N(0,1)

	ranges    linalg.Vector
	contracts []privacy.Contract
}

// ConsumerConfig configures NewConsumerModel.
type ConsumerConfig struct {
	// Owners is the data owner population the queries range over; the
	// consumer model needs their ranges and contracts to anticipate the
	// feature vector the broker will derive (the market value is a
	// function of those features).
	Owners []Owner
	// FeatureDim is the broker's aggregation dimension n.
	FeatureDim int
	// Theta is the hidden weight vector θ* of the market value model,
	// of length FeatureDim.
	Theta linalg.Vector
	// Noise is the optional market value uncertainty δ_t (nil for none).
	Noise *randx.SubGaussianNoise
	// UniformWeights draws query weights from U[−1,1] instead of N(0,1).
	UniformWeights bool
}

// NewConsumerModel validates and builds the stream generator.
func NewConsumerModel(cfg ConsumerConfig) (*ConsumerModel, error) {
	if len(cfg.Owners) == 0 {
		return nil, fmt.Errorf("market: consumer model needs owners")
	}
	if cfg.FeatureDim < 1 || cfg.FeatureDim > len(cfg.Owners) {
		return nil, fmt.Errorf("market: feature dimension %d out of range", cfg.FeatureDim)
	}
	if len(cfg.Theta) != cfg.FeatureDim {
		return nil, fmt.Errorf("market: theta length %d, want %d", len(cfg.Theta), cfg.FeatureDim)
	}
	cm := &ConsumerModel{
		owners:     len(cfg.Owners),
		featureDim: cfg.FeatureDim,
		theta:      cfg.Theta.Clone(),
		noise:      cfg.Noise,
		uniform:    cfg.UniformWeights,
		ranges:     make(linalg.Vector, len(cfg.Owners)),
		contracts:  make([]privacy.Contract, len(cfg.Owners)),
	}
	for i, o := range cfg.Owners {
		cm.ranges[i] = o.Range
		cm.contracts[i] = o.Contract
	}
	// Leakages no longer validates ranges per call (the check is hoisted
	// to construction time); this constructor is the construction time.
	if err := privacy.ValidateRanges(cm.ranges); err != nil {
		return nil, fmt.Errorf("market: %w", err)
	}
	return cm, nil
}

// Theta returns a copy of the hidden weight vector.
func (cm *ConsumerModel) Theta() linalg.Vector { return cm.theta.Clone() }

// NextQuery draws the next consumer's query and valuation. The valuation
// is computed through the same §II-B pipeline the broker uses, so broker
// and consumer agree on the feature representation.
func (cm *ConsumerModel) NextQuery(rng *randx.RNG) (Query, error) {
	weights := make(linalg.Vector, cm.owners)
	if cm.uniform {
		for i := range weights {
			weights[i] = rng.Uniform(-1, 1)
		}
	} else {
		for i := range weights {
			weights[i] = rng.StdNormal()
		}
	}
	// Noise variance 10^k with k uniform in {−4, …, 4}.
	k := rng.Intn(9) - 4
	variance := math.Pow(10, float64(k))
	q, err := privacy.NewLinearQuery(weights, variance)
	if err != nil {
		return Query{}, err
	}
	leak, err := q.Leakages(cm.ranges)
	if err != nil {
		return Query{}, err
	}
	comps, err := privacy.Compensations(leak, cm.contracts)
	if err != nil {
		return Query{}, err
	}
	x, _, _, err := feature.CompensationFeatures(comps, cm.featureDim)
	if err != nil {
		return Query{}, err
	}
	v := x.Dot(cm.theta)
	if cm.noise != nil {
		v += cm.noise.Sample(rng)
	}
	return Query{Q: q, Valuation: v}, nil
}
