package market

// The quote cache: a fingerprint-keyed LRU of prepared QuoteContexts.
// Consumers commonly resubmit the same query shape (same weights, same
// noise variance) round after round; preparing it once and serving the
// cached context skips the whole leakage → compensation → sort →
// aggregate pipeline. Cached contexts are immutable and shared — settle
// only reads them — so a hit costs one mutex-guarded map lookup plus an
// O(support) identity check, and the result is bit-identical to a fresh
// Prepare by construction (it IS a previous Prepare's output).

import (
	"math"
	"sync"

	"datamarket/internal/privacy"
)

// maxCachedSupport bounds the support size of cacheable queries: each
// entry stores a copy of the support weights, so caching near-dense
// queries over a 65536-owner market would cost half a megabyte per
// entry. Queries above the bound just take the pooled prepare path.
const maxCachedSupport = 1024

// cacheEntry is one cached query → context binding, linked into the
// LRU list. support aliases ctx.Support (immutable once cached);
// weights is the query's support-aligned weight copy used to verify a
// fingerprint match exactly.
type cacheEntry struct {
	key      uint64
	owners   int
	variance float64
	support  []int
	weights  []float64
	ctx      *QuoteContext

	prev, next *cacheEntry
}

// quoteCache is the LRU itself. One entry per fingerprint: a colliding
// insert replaces the previous holder, which keeps lookups O(1) and is
// harmless — collisions only cost a re-prepare.
type quoteCache struct {
	mu      sync.Mutex
	cap     int
	entries map[uint64]*cacheEntry
	head    *cacheEntry // most recently used
	tail    *cacheEntry // least recently used
}

func newQuoteCache(capacity int) *quoteCache {
	return &quoteCache{cap: capacity, entries: make(map[uint64]*cacheEntry, capacity)}
}

// fingerprintQuery hashes the query identity the pipeline depends on —
// owner count, noise variance, and the support's (index, weight) pairs
// — with FNV-1a over the raw 64-bit words.
func fingerprintQuery(q *privacy.LinearQuery, sup []int) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(len(q.Weights)))
	mix(math.Float64bits(q.NoiseVariance))
	for _, i := range sup {
		mix(uint64(i))
		mix(math.Float64bits(q.Weights[i]))
	}
	return h
}

// matches verifies a fingerprint hit is a true identity match.
func (e *cacheEntry) matches(q *privacy.LinearQuery, sup []int) bool {
	if e.owners != len(q.Weights) || e.variance != q.NoiseVariance || len(e.support) != len(sup) {
		return false
	}
	for k, i := range e.support {
		if sup[k] != i || e.weights[k] != q.Weights[i] {
			return false
		}
	}
	return true
}

// lookup returns the cached context for q if present, along with the
// fingerprint (so a following insert doesn't rehash).
func (c *quoteCache) lookup(q *privacy.LinearQuery, sup []int) (*QuoteContext, uint64, bool) {
	key := fingerprintQuery(q, sup)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || !e.matches(q, sup) {
		return nil, key, false
	}
	c.moveToFront(e)
	return e.ctx, key, true
}

// insert stores a freshly prepared context under key, evicting the
// least recently used entry past capacity. ctx must never be mutated
// after insertion.
func (c *quoteCache) insert(key uint64, q *privacy.LinearQuery, sup []int, ctx *QuoteContext) {
	weights := make([]float64, len(sup))
	for k, i := range sup {
		weights[k] = q.Weights[i]
	}
	e := &cacheEntry{
		key:      key,
		owners:   len(q.Weights),
		variance: q.NoiseVariance,
		support:  ctx.Support,
		weights:  weights,
		ctx:      ctx,
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[key]; ok {
		c.unlink(old)
	}
	c.entries[key] = e
	c.pushFront(e)
	for len(c.entries) > c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.key)
	}
}

func (c *quoteCache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *quoteCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *quoteCache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// len reports the live entry count (tests).
func (c *quoteCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
