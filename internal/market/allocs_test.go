//go:build !race

package market

// Steady-state allocation guards for the fast path. These use
// testing.AllocsPerRun, whose counts are perturbed by the race
// detector's instrumentation, so the file is excluded from -race runs
// (the equivalence suite still covers the same code paths there).

import (
	"testing"

	"datamarket/internal/linalg"
	"datamarket/internal/pricing"
	"datamarket/internal/privacy"
	"datamarket/internal/randx"
)

// TestPrepareIntoZeroAllocs pins the core promise of the pooled fast
// path: after warmup, PrepareInto allocates nothing.
func TestPrepareIntoZeroAllocs(t *testing.T) {
	const owners = 1000
	pop := testOwners(t, owners, 51)
	b, err := NewBroker(Config{
		Owners: pop, Mechanism: testMechanism(t, 8, 100), FeatureDim: 8,
		QuoteCacheSize: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := randx.New(52)
	weights := make(linalg.Vector, owners)
	for _, i := range r.Perm(owners)[:64] {
		weights[i] = r.Normal(0, 1)
	}
	q, err := privacy.NewLinearQuery(weights, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := new(QuoteContext)
	if err := b.PrepareInto(ctx, q); err != nil { // warmup sizes the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := b.PrepareInto(ctx, q); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("PrepareInto allocates %v times per run in steady state, want 0", allocs)
	}
}

// TestSettleBatchZeroAllocs pins the settle side: with the ledger
// preallocated and curve records off, settling a priced batch touches
// the books without allocating.
func TestSettleBatchZeroAllocs(t *testing.T) {
	const (
		owners = 500
		batch  = 16
		runs   = 100
	)
	pop := testOwners(t, owners, 61)
	b, err := NewBroker(Config{
		Owners: pop, Mechanism: pricing.NewSync(testMechanism(t, 6, 100000)),
		FeatureDim: 6, QuoteCacheSize: -1,
		LedgerPrealloc: (runs + 2) * batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := randx.New(62)
	queries := make([]Query, batch)
	ctxs := make([]*QuoteContext, batch)
	idx := make([]int, batch)
	priced := make([]pricing.BatchOutcome, batch)
	out := make([]TradeOutcome, batch)
	for i := range queries {
		weights := make(linalg.Vector, owners)
		for _, j := range r.Perm(owners)[:32] {
			weights[j] = r.Normal(0, 1)
		}
		q, err := privacy.NewLinearQuery(weights, 1)
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = Query{Q: q, Valuation: 5}
		ctx := new(QuoteContext)
		if err := b.PrepareInto(ctx, q); err != nil {
			t.Fatal(err)
		}
		ctxs[i] = ctx
		idx[i] = i
		priced[i] = pricing.BatchOutcome{
			Quote:    pricing.Quote{Price: ctx.Reserve, Decision: pricing.DecisionExploratory},
			Accepted: true,
		}
	}
	b.settleBatch(queries, ctxs, idx, priced, out) // warmup
	for _, o := range out {
		if o.Err != nil {
			t.Fatal(o.Err)
		}
	}
	allocs := testing.AllocsPerRun(runs, func() {
		b.settleBatch(queries, ctxs, idx, priced, out)
	})
	if allocs != 0 {
		t.Fatalf("settleBatch allocates %v times per run in steady state, want 0", allocs)
	}
}
