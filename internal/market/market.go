// Package market implements the online personal data market of the paper's
// system model (Fig. 2): data owners contribute private values under
// compensation contracts, a data broker answers noisy linear queries from
// online data consumers, quantifies privacy leakage, compensates owners,
// and prices each query with a posted-price mechanism subject to the
// reserve price constraint (the total privacy compensation).
package market

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"datamarket/internal/feature"
	"datamarket/internal/linalg"
	"datamarket/internal/pricing"
	"datamarket/internal/privacy"
	"datamarket/internal/randx"
)

// Owner is a data owner: a private value (e.g. an aggregate of her
// MovieLens ratings), the range Δ of that value used in sensitivity
// analysis, and her compensation contract.
type Owner struct {
	// ID identifies the owner.
	ID int
	// Value is the private data value the broker holds for her.
	Value float64
	// Range bounds how much Value could change between neighboring
	// databases (the per-owner sensitivity Δᵢ ≥ 0).
	Range float64
	// Contract converts privacy leakage into compensation.
	Contract privacy.Contract
}

// Query is a data consumer's customized request: a noisy linear query to
// evaluate over the owners' values.
type Query struct {
	// Q is the underlying noisy linear query (weights + noise variance).
	Q *privacy.LinearQuery
	// Valuation is the consumer's private market value for the answer;
	// the broker never observes it, only whether her price was accepted.
	Valuation float64
}

// Transaction is the ledger record of one pricing round.
type Transaction struct {
	Round        int
	Reserve      float64
	Posted       float64
	Decision     pricing.Decision
	Sold         bool
	Revenue      float64 // price collected if sold
	Compensation float64 // paid out to owners if sold
	Profit       float64 // Revenue − Compensation (≥ 0 by reserve constraint)
	Answer       float64 // noisy answer returned if sold
	MarketValue  float64 // consumer's valuation (recorded for evaluation)
	Regret       float64 // per Eq. (1)
}

// Broker runs the data market: it owns the dataset, the compensation
// machinery, the feature pipeline, and the pricing mechanism.
//
// Trade is safe for concurrent use when the configured mechanism is
// itself concurrency-safe (e.g. a pricing.SyncPoster): the pricing round
// runs atomically through pricing.RoundPoster when available, and the
// broker's own ledger and payout state are guarded by an internal mutex.
// Under concurrency, ledger order may differ from pricing-round order.
type Broker struct {
	owners    []Owner
	values    linalg.Vector
	ranges    linalg.Vector
	contracts []privacy.Contract

	mech       pricing.Poster
	featureDim int

	// ctxPool recycles QuoteContext scratch between trades; cache
	// holds finished contexts keyed by query fingerprint. Both serve
	// Prepare, which reads only the immutable config above, so they
	// need no coordination with the books mutex below.
	ctxPool sync.Pool
	cache   *quoteCache

	mu      sync.Mutex // guards rng, ledger, tracker, ownerPayout, totals
	rng     *randx.RNG
	ledger  []Transaction
	tracker *pricing.Tracker

	ownerPayout linalg.Vector // cumulative compensation per owner

	// Running totals, maintained in settle so Stats and the profit/
	// revenue accessors are O(1) regardless of ledger length.
	sold            int
	totRevenue      float64
	totCompensation float64
}

// Config configures a Broker.
type Config struct {
	// Owners is the data owner population; must be non-empty, with
	// non-negative ranges and non-nil contracts.
	Owners []Owner
	// Mechanism is the posted-price strategy; typically a pricing.Mechanism
	// built with WithReserve().
	Mechanism pricing.Poster
	// FeatureDim is the dimension n of the aggregated compensation
	// feature vector (1 ≤ FeatureDim ≤ len(Owners)).
	FeatureDim int
	// Seed drives the Laplace noise in the returned answers.
	Seed uint64
	// KeepRecords retains the full ledger (needed for curves).
	KeepRecords bool
	// QuoteCacheSize bounds the fingerprint-keyed LRU of prepared
	// QuoteContexts: repeated queries (same weights and variance — the
	// common consumer pattern) skip the prepare pipeline entirely.
	// 0 means DefaultQuoteCacheSize; negative disables the cache.
	// Cached results are bit-identical to freshly prepared ones.
	QuoteCacheSize int
	// LedgerPrealloc pre-sizes the ledger's backing array, so settles
	// below that many rounds append without growing — the last
	// allocation on the steady-state settle path. 0 keeps the default
	// growth behavior.
	LedgerPrealloc int
}

// DefaultQuoteCacheSize is the quote-cache capacity when Config leaves
// QuoteCacheSize zero.
const DefaultQuoteCacheSize = 256

// NewBroker validates the configuration and builds the broker.
func NewBroker(cfg Config) (*Broker, error) {
	if len(cfg.Owners) == 0 {
		return nil, fmt.Errorf("market: no data owners")
	}
	if cfg.Mechanism == nil {
		return nil, fmt.Errorf("market: no pricing mechanism")
	}
	if cfg.FeatureDim < 1 || cfg.FeatureDim > len(cfg.Owners) {
		return nil, fmt.Errorf("market: feature dimension %d out of range [1, %d]",
			cfg.FeatureDim, len(cfg.Owners))
	}
	b := &Broker{
		owners:      cfg.Owners,
		values:      make(linalg.Vector, len(cfg.Owners)),
		ranges:      make(linalg.Vector, len(cfg.Owners)),
		contracts:   make([]privacy.Contract, len(cfg.Owners)),
		mech:        cfg.Mechanism,
		featureDim:  cfg.FeatureDim,
		rng:         randx.New(cfg.Seed),
		tracker:     pricing.NewTracker(cfg.KeepRecords),
		ownerPayout: make(linalg.Vector, len(cfg.Owners)),
	}
	for i, o := range cfg.Owners {
		if o.Contract == nil {
			return nil, fmt.Errorf("market: owner %d has no contract", i)
		}
		b.values[i] = o.Value
		b.ranges[i] = o.Range
		b.contracts[i] = o.Contract
	}
	// Validate all ranges once here so the per-trade leakage loop
	// doesn't have to (privacy.Leakages documents this hoist).
	if err := privacy.ValidateRanges(b.ranges); err != nil {
		return nil, fmt.Errorf("market: %w", err)
	}
	if cfg.LedgerPrealloc > 0 {
		b.ledger = make([]Transaction, 0, cfg.LedgerPrealloc)
	}
	b.ctxPool.New = func() any { return new(QuoteContext) }
	cacheSize := cfg.QuoteCacheSize
	if cacheSize == 0 {
		cacheSize = DefaultQuoteCacheSize
	}
	if cacheSize > 0 {
		b.cache = newQuoteCache(cacheSize)
	}
	return b, nil
}

// Owners returns the number of data owners.
func (b *Broker) Owners() int { return len(b.owners) }

// FeatureDim returns the aggregation dimension n.
func (b *Broker) FeatureDim() int { return b.featureDim }

// QuoteContext is the broker-side derivation for one query, exposed so
// experiments can reuse the exact pipeline without trading. It is
// support-sparse: Leakages and Compensations carry one entry per owner
// in Support, not one per owner in the market — owners outside the
// query's support leak nothing and are owed nothing by construction,
// so a 64-owner query over a 65536-owner market derives 64 entries.
type QuoteContext struct {
	// Support is the ascending owner indices with nonzero query weight.
	Support []int
	// Leakages and Compensations align with Support entry for entry:
	// Leakages[k] and Compensations[k] belong to owner Support[k].
	Leakages      linalg.Vector
	Compensations linalg.Vector
	// Reserve is the total compensation in normalized feature units.
	Reserve float64
	// Features is the L2-normalized partition aggregation (§V-A).
	Features linalg.Vector
	// Scale is the L2 normalization constant.
	Scale float64

	sorted linalg.Vector // sort scratch, reused across PrepareInto calls
}

// Prepare runs the §II-B pipeline for a query: leakage quantification,
// compensations, reserve price, and the normalized partition-aggregated
// feature vector. The results are bit-identical to the dense
// per-owner pipeline (Leakages → Compensations → CompensationFeatures)
// restricted to the query's support.
func (b *Broker) Prepare(q *privacy.LinearQuery) (*QuoteContext, error) {
	ctx := new(QuoteContext)
	if err := b.PrepareInto(ctx, q); err != nil {
		return nil, err
	}
	return ctx, nil
}

// resizeVec returns v with length n, reusing its backing array when
// the capacity allows.
func resizeVec(v linalg.Vector, n int) linalg.Vector {
	if cap(v) < n {
		return make(linalg.Vector, n)
	}
	return v[:n]
}

// PrepareInto is Prepare into caller-owned scratch: dst's slices are
// resized in place and reused, so the steady state allocates nothing.
// dst must not be used by another goroutine while the call runs, and
// earlier results read from dst are overwritten.
func (b *Broker) PrepareInto(dst *QuoteContext, q *privacy.LinearQuery) error {
	sup := q.Support()
	leak, err := q.SupportLeakages(dst.Leakages, b.ranges)
	if err != nil {
		return fmt.Errorf("market: leakage quantification: %w", err)
	}
	dst.Leakages = leak
	comps, err := privacy.SupportCompensations(dst.Compensations, sup, leak, b.contracts)
	if err != nil {
		return fmt.Errorf("market: compensations: %w", err)
	}
	dst.Compensations = comps
	dst.Support = append(dst.Support[:0], sup...)
	dst.sorted = append(dst.sorted[:0], comps...)
	sort.Float64s(dst.sorted)
	dst.Features = resizeVec(dst.Features, b.featureDim)
	if err := feature.PartitionAggregateSorted(dst.Features, dst.sorted, len(b.ranges)-len(sup)); err != nil {
		return fmt.Errorf("market: feature aggregation: %w", err)
	}
	// The reserve is the actual total compensation (what the broker must
	// pay out), matching the non-negative-utility constraint of §II-A.
	// Note the paper's §V-A normalization prices everything in units of
	// the feature scale; we keep the reserve in those same units so the
	// reserve constraint q_t = Σᵢ x_{t,i} of the experiments holds.
	dst.Scale = dst.Features.Normalize()
	dst.Reserve = dst.Features.Sum()
	return nil
}

// quoteFor produces the QuoteContext for a query: from the LRU cache
// when an identical query (same weights and variance) was prepared
// before, from pooled scratch otherwise. pooled reports whether the
// caller must return ctx to b.ctxPool once the trade settles; cached
// contexts are shared, immutable, and never released.
func (b *Broker) quoteFor(q *privacy.LinearQuery) (ctx *QuoteContext, pooled bool, err error) {
	sup := q.Support()
	if b.cache != nil && len(sup) <= maxCachedSupport {
		ctx, key, ok := b.cache.lookup(q, sup)
		if ok {
			return ctx, false, nil
		}
		// Miss: prepare into a fresh context the cache can own. The
		// pool is bypassed on purpose — a pooled context would be
		// recycled while cached readers still hold it.
		ctx = new(QuoteContext)
		if err := b.PrepareInto(ctx, q); err != nil {
			return nil, false, err
		}
		b.cache.insert(key, q, sup, ctx)
		return ctx, false, nil
	}
	c := b.ctxPool.Get().(*QuoteContext)
	if err := b.PrepareInto(c, q); err != nil {
		b.ctxPool.Put(c)
		return nil, false, err
	}
	return c, true, nil
}

// Trade executes one full round: prepare, post a price, observe the
// consumer's decision, settle payments, and append to the ledger. The
// consumer accepts iff the posted price is at most her valuation.
//
// When the mechanism implements pricing.RoundPoster (SyncPoster does),
// the post-observe pair runs atomically so concurrent trades cannot
// interleave inside a round; otherwise the split calls are used and the
// caller must serialize trades herself.
func (b *Broker) Trade(query Query) (Transaction, error) {
	ctx, pooled, err := b.quoteFor(query.Q)
	if err != nil {
		return Transaction{}, err
	}
	tx, err := b.tradePrepared(query, ctx)
	if pooled {
		b.ctxPool.Put(ctx)
	}
	return tx, err
}

// tradePrepared prices and settles one already-prepared query.
func (b *Broker) tradePrepared(query Query, ctx *QuoteContext) (Transaction, error) {
	var (
		quote pricing.Quote
		sold  bool
		err   error
	)
	if rp, ok := b.mech.(pricing.RoundPoster); ok {
		quote, sold, err = rp.PriceRound(ctx.Features, ctx.Reserve, func(q pricing.Quote) bool {
			return pricing.Sold(q.Price, query.Valuation)
		})
		if err != nil {
			return Transaction{}, fmt.Errorf("market: pricing round: %w", err)
		}
	} else {
		quote, err = b.mech.PostPrice(ctx.Features, ctx.Reserve)
		if err != nil {
			return Transaction{}, fmt.Errorf("market: posting price: %w", err)
		}
		if quote.Decision != pricing.DecisionSkip {
			sold = pricing.Sold(quote.Price, query.Valuation)
			if err := b.mech.Observe(sold); err != nil {
				return Transaction{}, fmt.Errorf("market: observing feedback: %w", err)
			}
		}
	}
	return b.settle(query, ctx, quote, sold)
}

// TradeBatch executes len(queries) full rounds. Each query runs the
// Prepare pipeline exactly once; when the mechanism supports batch
// pricing (pricing.BatchRoundPoster — SyncPoster does), all rounds then
// price under ONE lock acquisition before settling, amortizing the
// per-round synchronization that dominates Trade under concurrency.
// Otherwise the queries fall back to sequential Trade calls.
//
// Every query is attempted regardless of earlier failures, on both the
// batch and the fallback path: a query that fails (prepare, pricing, or
// settlement) leaves no ledger entry, the rest trade normally, and the
// returned error joins the per-query failures. Settling the survivors
// is not optional — the mechanism has already consumed their feedback,
// so skipping them would leave the books permanently behind the
// mechanism state.
func (b *Broker) TradeBatch(queries []Query) ([]Transaction, error) {
	out := b.TradeBatchOutcomes(queries)
	txs := make([]Transaction, 0, len(out))
	var errs []error
	for i, o := range out {
		if o.Err != nil {
			errs = append(errs, fmt.Errorf("market: query %d: %w", i, o.Err))
			continue
		}
		txs = append(txs, o.Tx)
	}
	return txs, errors.Join(errs...)
}

// TradeOutcome is one query's result from TradeBatchOutcomes: the
// settled transaction, or the error that stopped it (prepare, pricing,
// or settlement).
type TradeOutcome struct {
	Tx  Transaction
	Err error
}

// TradeBatchOutcomes executes len(queries) full rounds and reports them
// index-for-index — the form serving layers need to answer each request
// slot of a wire batch. TradeBatch is this with the failures joined.
//
// On a batch-capable mechanism the batch runs in three phases: queries
// prepare in parallel across a bounded worker pool (Prepare reads only
// immutable broker config), all prepared rounds price under one pricing
// lock acquisition (PriceBatch), and all priced rounds settle under one
// books lock acquisition (settleBatch) — two lock handoffs per batch
// instead of two per trade.
func (b *Broker) TradeBatchOutcomes(queries []Query) []TradeOutcome {
	out := make([]TradeOutcome, len(queries))
	bp, ok := b.mech.(pricing.BatchRoundPoster)
	if !ok {
		for i, q := range queries {
			out[i].Tx, out[i].Err = b.Trade(q)
		}
		return out
	}

	ctxs := make([]*QuoteContext, len(queries))
	pooled := make([]bool, len(queries))
	b.prepareAll(queries, ctxs, pooled, out)
	rounds := make([]pricing.BatchRound, 0, len(queries))
	idx := make([]int, 0, len(queries)) // query index of each prepared round
	for i, ctx := range ctxs {
		if ctx == nil {
			continue
		}
		rounds = append(rounds, pricing.BatchRound{X: ctx.Features, Reserve: ctx.Reserve})
		idx = append(idx, i)
	}
	priced := bp.PriceBatch(rounds, func(k int, q pricing.Quote) bool {
		return pricing.Sold(q.Price, queries[idx[k]].Valuation)
	})
	b.settleBatch(queries, ctxs, idx, priced, out)
	for i, ctx := range ctxs {
		if pooled[i] {
			b.ctxPool.Put(ctx)
		}
	}
	return out
}

// minPrepareChunk is the fewest queries worth handing one prepare
// worker: below GOMAXPROCS×this, goroutine startup costs more than the
// parallelism buys on support-sparse prepares.
const minPrepareChunk = 8

// prepareAll runs quoteFor for every query, filling ctxs/pooled (or
// out[i].Err) index-aligned. Large batches fan out across a bounded
// worker pool: Prepare reads only the broker's immutable config, so the
// only shared state is the cache's own mutex and the context pool.
func (b *Broker) prepareAll(queries []Query, ctxs []*QuoteContext, pooled []bool, out []TradeOutcome) {
	prep := func(i int) {
		ctx, p, err := b.quoteFor(queries[i].Q)
		if err != nil {
			out[i].Err = fmt.Errorf("preparing query: %w", err)
			return
		}
		ctxs[i], pooled[i] = ctx, p
	}
	workers := runtime.GOMAXPROCS(0)
	if most := len(queries) / minPrepareChunk; workers > most {
		workers = most
	}
	if workers <= 1 {
		for i := range queries {
			prep(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(queries); i += workers {
				prep(i)
			}
		}(w)
	}
	wg.Wait()
}

// settleBatch settles every priced round under ONE books-lock
// acquisition — the sanctioned batch-settle shape: per-item locking
// inside the loop would pay a mutex handoff per trade, which under
// concurrency dominates the support-sparse settle itself.
func (b *Broker) settleBatch(queries []Query, ctxs []*QuoteContext, idx []int, priced []pricing.BatchOutcome, out []TradeOutcome) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for k, o := range priced {
		i := idx[k]
		if o.Err != nil {
			out[i].Err = fmt.Errorf("pricing query: %w", o.Err)
			continue
		}
		tx, err := b.settleLocked(queries[i], ctxs[i], o.Quote, o.Accepted)
		if err != nil {
			out[i].Err = fmt.Errorf("settling query: %w", err)
			continue
		}
		out[i].Tx = tx
	}
}

// settle updates the broker's books for one priced round under the lock.
func (b *Broker) settle(query Query, ctx *QuoteContext, quote pricing.Quote, sold bool) (Transaction, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.settleLocked(query, ctx, quote, sold)
}

// settleLocked is settle's body; the caller holds b.mu (settle for one
// round, settleBatch for a whole batch under a single acquisition).
func (b *Broker) settleLocked(query Query, ctx *QuoteContext, quote pricing.Quote, sold bool) (Transaction, error) {
	tx := Transaction{
		Round:       len(b.ledger) + 1,
		Reserve:     ctx.Reserve,
		Decision:    quote.Decision,
		MarketValue: query.Valuation,
	}

	if quote.Decision == pricing.DecisionSkip {
		tx.Posted = ctx.Reserve
	} else {
		tx.Posted = quote.Price
		tx.Sold = sold
	}

	if tx.Sold {
		// Answer the query before touching any payout state: if the
		// answer fails, the settlement must leave the books exactly as
		// they were — no payout without a matching ledger entry.
		ans, err := query.Q.Answer(b.values, b.rng)
		if err != nil {
			return Transaction{}, err
		}
		tx.Answer = ans
		tx.Revenue = tx.Posted
		tx.Compensation = ctx.Reserve
		tx.Profit = tx.Revenue - tx.Compensation
		// Pay owners proportionally to their compensations, in
		// compensation units rescaled to feature units. Only supported
		// owners can be owed anything (π(0) = 0), so the update is
		// support-sparse: O(support), not O(owners).
		total := ctx.Compensations.Sum()
		if total > 0 {
			for k, c := range ctx.Compensations {
				b.ownerPayout[ctx.Support[k]] += ctx.Reserve * c / total
			}
		}
		b.sold++
		b.totRevenue += tx.Revenue
		b.totCompensation += tx.Compensation
	}
	tx.Regret = pricing.SingleRoundRegret(query.Valuation, ctx.Reserve, tx.Posted)

	b.tracker.Record(query.Valuation, ctx.Reserve, quote)
	b.ledger = append(b.ledger, tx)
	return tx, nil
}

// Ledger returns a copy of the recorded transactions in trade order.
// The returned slice is the caller's own, so — unlike the shared slice
// this used to hand out — it is safe to read while trades are in flight
// and safe to mutate.
func (b *Broker) Ledger() []Transaction {
	txs, _ := b.LedgerSlice(0, 0)
	return txs
}

// LedgerSlice copies out ledger entries [offset, offset+limit) in trade
// order, plus the full ledger length. Negative offset is treated as 0;
// limit ≤ 0 means "to the end". Unlike Ledger it is safe while trades
// are in flight: the returned slice is the caller's own.
func (b *Broker) LedgerSlice(offset, limit int) ([]Transaction, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	total := len(b.ledger)
	if offset < 0 {
		offset = 0
	}
	if offset > total {
		offset = total
	}
	end := total
	if limit > 0 && offset+limit < end {
		end = offset + limit
	}
	out := make([]Transaction, end-offset)
	copy(out, b.ledger[offset:end])
	return out, total
}

// Payouts copies out the cumulative compensation paid to each owner.
func (b *Broker) Payouts() linalg.Vector {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ownerPayout.Clone()
}

// Stats is a consistent snapshot of the broker's books: the market
// totals plus the regret-tracker aggregates over every trade.
type Stats struct {
	// Rounds counts every trade; Sold the settled ones.
	Rounds int
	Sold   int
	// Revenue, Compensation, Profit are the market totals
	// (Profit = Revenue − Compensation ≥ 0 by the reserve constraint).
	Revenue      float64
	Compensation float64
	Profit       float64
	// Regret aggregates per Eq. (1).
	CumulativeRegret  float64
	CumulativeValue   float64
	CumulativeRevenue float64
	RegretRatio       float64
}

// Stats captures the books under the broker lock, so it is safe while
// trades are in flight and internally consistent (every counted round's
// settlement and regret are both included).
func (b *Broker) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{
		Rounds:            len(b.ledger),
		Sold:              b.sold,
		Revenue:           b.totRevenue,
		Compensation:      b.totCompensation,
		Profit:            b.totRevenue - b.totCompensation,
		CumulativeRegret:  b.tracker.CumulativeRegret(),
		CumulativeValue:   b.tracker.CumulativeValue(),
		CumulativeRevenue: b.tracker.CumulativeRevenue(),
		RegretRatio:       b.tracker.RegretRatio(),
	}
}

// Tracker returns the broker's regret tracker. The tracker is not itself
// safe for concurrent use; read it only after in-flight trades finish.
func (b *Broker) Tracker() *pricing.Tracker { return b.tracker }

// OwnerPayout returns the cumulative compensation paid to owner i.
func (b *Broker) OwnerPayout(i int) (float64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if i < 0 || i >= len(b.ownerPayout) {
		return 0, fmt.Errorf("market: owner %d out of range", i)
	}
	return b.ownerPayout[i], nil
}

// TotalProfit returns Σ (revenue − compensation) over all transactions;
// the reserve price constraint guarantees it is non-negative.
func (b *Broker) TotalProfit() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.totRevenue - b.totCompensation
}

// TotalRevenue returns the total price collected from consumers.
func (b *Broker) TotalRevenue() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.totRevenue
}
