package kernel

import (
	"math"
	"testing"

	"datamarket/internal/linalg"
	"datamarket/internal/randx"
)

func TestLinearKernel(t *testing.T) {
	k := Linear{}
	if got := k.Eval(linalg.VectorOf(1, 2), linalg.VectorOf(3, 4)); got != 11 {
		t.Fatalf("Eval = %v", got)
	}
	if k.Name() != "linear" {
		t.Fatalf("Name = %q", k.Name())
	}
}

func TestPolynomialKernel(t *testing.T) {
	k, err := NewPolynomial(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// (1·1 + 2·0 + 1)² = 4.
	if got := k.Eval(linalg.VectorOf(1, 2), linalg.VectorOf(1, 0)); got != 4 {
		t.Fatalf("Eval = %v", got)
	}
	if _, err := NewPolynomial(0, 1); err == nil {
		t.Fatal("expected degree error")
	}
	if _, err := NewPolynomial(2, -1); err == nil {
		t.Fatal("expected offset error")
	}
}

func TestRBFKernel(t *testing.T) {
	k, err := NewRBF(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := k.Eval(linalg.VectorOf(1, 1), linalg.VectorOf(1, 1)); got != 1 {
		t.Fatalf("self-similarity = %v", got)
	}
	// ‖(0,0)−(1,1)‖² = 2 → e⁻¹.
	if got := k.Eval(linalg.VectorOf(0, 0), linalg.VectorOf(1, 1)); math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Fatalf("Eval = %v", got)
	}
	if _, err := NewRBF(0); err == nil {
		t.Fatal("expected gamma error")
	}
	// RBF values live in (0, 1].
	r := randx.New(1)
	for i := 0; i < 100; i++ {
		v := k.Eval(r.NormalVector(3, 2), r.NormalVector(3, 2))
		if v <= 0 || v > 1 {
			t.Fatalf("RBF value out of (0,1]: %v", v)
		}
	}
}

func TestGramSymmetric(t *testing.T) {
	r := randx.New(2)
	var pts []linalg.Vector
	for i := 0; i < 8; i++ {
		pts = append(pts, r.NormalVector(3, 1))
	}
	k, _ := NewRBF(1)
	g := Gram(k, pts)
	if !g.IsSymmetric(0) {
		t.Fatal("Gram not symmetric")
	}
	for i := range pts {
		if math.Abs(g.At(i, i)-1) > 1e-12 {
			t.Fatalf("RBF diagonal = %v", g.At(i, i))
		}
	}
}

func TestKernelsArePSD(t *testing.T) {
	r := randx.New(3)
	var pts []linalg.Vector
	for i := 0; i < 12; i++ {
		pts = append(pts, r.NormalVector(4, 1))
	}
	poly, _ := NewPolynomial(3, 0.5)
	rbf, _ := NewRBF(0.7)
	for _, k := range []Kernel{Linear{}, poly, rbf} {
		ok, err := IsPSD(k, pts, 1e-8)
		if err != nil {
			t.Fatalf("%s: %v", k.Name(), err)
		}
		if !ok {
			t.Fatalf("%s Gram matrix is not PSD", k.Name())
		}
	}
}
