// Package kernel provides the Mercer kernels used by the kernelized market
// value model of §IV-A (v_t = Σ_k K(x_t, x_k)θ*_k) and by the landmark
// feature map in the pricing package. All kernels here are positive
// semi-definite, which tests verify via Gram matrix eigenvalues.
package kernel

import (
	"fmt"
	"math"

	"datamarket/internal/linalg"
)

// Kernel is a symmetric positive semi-definite similarity function. It
// mirrors pricing.Kernel so kernels plug straight into LandmarkMap.
type Kernel interface {
	Eval(x, y linalg.Vector) float64
	Name() string
}

// Linear is K(x, y) = xᵀy.
type Linear struct{}

// Eval returns the dot product.
func (Linear) Eval(x, y linalg.Vector) float64 { return x.Dot(y) }

// Name returns "linear".
func (Linear) Name() string { return "linear" }

// Polynomial is K(x, y) = (xᵀy + c)^d with c ≥ 0 and integer degree d ≥ 1.
type Polynomial struct {
	Degree int
	Offset float64
}

// NewPolynomial validates and builds a polynomial kernel.
func NewPolynomial(degree int, offset float64) (Polynomial, error) {
	if degree < 1 {
		return Polynomial{}, fmt.Errorf("kernel: polynomial degree must be ≥ 1, got %d", degree)
	}
	// offset < 0 alone admits NaN (ordered comparisons with NaN are
	// false), and a NaN offset makes every kernel evaluation NaN.
	if math.IsNaN(offset) || math.IsInf(offset, 0) || offset < 0 {
		return Polynomial{}, fmt.Errorf("kernel: polynomial offset must be finite and ≥ 0, got %g", offset)
	}
	return Polynomial{Degree: degree, Offset: offset}, nil
}

// Eval returns (xᵀy + c)^d.
func (k Polynomial) Eval(x, y linalg.Vector) float64 {
	return math.Pow(x.Dot(y)+k.Offset, float64(k.Degree))
}

// Name identifies the kernel.
func (k Polynomial) Name() string {
	return fmt.Sprintf("poly(d=%d,c=%g)", k.Degree, k.Offset)
}

// RBF is the Gaussian kernel K(x, y) = exp(−γ‖x−y‖²) with γ > 0.
type RBF struct {
	Gamma float64
}

// NewRBF validates and builds an RBF kernel.
func NewRBF(gamma float64) (RBF, error) {
	if math.IsNaN(gamma) || math.IsInf(gamma, 0) || gamma <= 0 {
		return RBF{}, fmt.Errorf("kernel: RBF gamma must be finite and positive, got %g", gamma)
	}
	return RBF{Gamma: gamma}, nil
}

// Eval returns exp(−γ‖x−y‖²).
func (k RBF) Eval(x, y linalg.Vector) float64 {
	d := x.Sub(y)
	return math.Exp(-k.Gamma * d.Dot(d))
}

// Name identifies the kernel.
func (k RBF) Name() string { return fmt.Sprintf("rbf(γ=%g)", k.Gamma) }

// Gram computes the kernel matrix G[i,j] = K(points[i], points[j]).
func Gram(k Kernel, points []linalg.Vector) *linalg.Matrix {
	n := len(points)
	g := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := k.Eval(points[i], points[j])
			g.Set(i, j, v)
			g.Set(j, i, v)
		}
	}
	return g
}

// IsPSD reports whether the Gram matrix over the points is positive
// semi-definite within tolerance (smallest eigenvalue ≥ −tol).
func IsPSD(k Kernel, points []linalg.Vector, tol float64) (bool, error) {
	g := Gram(k, points)
	lo, err := linalg.SmallestEigenvalueSym(g)
	if err != nil {
		return false, err
	}
	return lo >= -tol, nil
}
