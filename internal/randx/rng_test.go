package randx

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds coincided %d/100 times", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := NewStream(1, 100)
	b := NewStream(1, 200)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams coincided %d/100 times", same)
	}
}

func TestSplitDiverges(t *testing.T) {
	r := New(7)
	c1 := r.Split()
	c2 := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split children coincided %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestUniformMoments(t *testing.T) {
	r := New(2)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.Uniform(-1, 1)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	varc := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0", mean)
	}
	if math.Abs(varc-1.0/3) > 0.01 {
		t.Errorf("uniform variance = %v, want ~1/3", varc)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(3)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.Normal(2, 3)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	varc := sumsq/n - mean*mean
	if math.Abs(mean-2) > 0.03 {
		t.Errorf("normal mean = %v, want ~2", mean)
	}
	if math.Abs(varc-9) > 0.15 {
		t.Errorf("normal variance = %v, want ~9", varc)
	}
}

func TestLaplaceMoments(t *testing.T) {
	r := New(4)
	const n = 300000
	scale := 2.0
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.Laplace(0, scale)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	varc := sumsq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("laplace mean = %v, want ~0", mean)
	}
	if math.Abs(varc-2*scale*scale)/(2*scale*scale) > 0.03 {
		t.Errorf("laplace variance = %v, want ~%v", varc, 2*scale*scale)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(5)
	const n = 200000
	rate := 4.0
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Exponential(rate)
		if x < 0 {
			t.Fatalf("negative exponential draw %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1/rate) > 0.005 {
		t.Errorf("exponential mean = %v, want ~%v", mean, 1/rate)
	}
}

func TestRademacher(t *testing.T) {
	r := New(6)
	counts := map[float64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Rademacher()]++
	}
	if len(counts) != 2 {
		t.Fatalf("Rademacher support = %v", counts)
	}
	if math.Abs(float64(counts[1])/n-0.5) > 0.01 {
		t.Errorf("Rademacher bias: %v", counts)
	}
}

func TestIntnUnbiased(t *testing.T) {
	r := New(7)
	const n, k = 120000, 6
	counts := make([]int, k)
	for i := 0; i < n; i++ {
		v := r.Intn(k)
		if v < 0 || v >= k {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)/n-1.0/k) > 0.01 {
			t.Errorf("Intn bucket %d frequency %v", i, float64(c)/n)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestOnSphereAndInBall(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		s := r.OnSphere(5)
		if math.Abs(s.Norm2()-1) > 1e-12 {
			t.Fatalf("sphere point norm %v", s.Norm2())
		}
		b := r.InBall(5)
		if b.Norm2() > 1+1e-12 {
			t.Fatalf("ball point norm %v", b.Norm2())
		}
	}
}

func TestVectorSamplers(t *testing.T) {
	r := New(10)
	v := r.NormalVector(1000, 2)
	if len(v) != 1000 {
		t.Fatalf("length %d", len(v))
	}
	u := r.UniformVector(1000, -3, 3)
	for _, x := range u {
		if x < -3 || x >= 3 {
			t.Fatalf("uniform vector entry out of range: %v", x)
		}
	}
}
