// Package randx provides the deterministic random number generation the
// experiments depend on: a seedable, splittable PCG-style generator and
// samplers for every distribution the paper draws from — normal, uniform,
// Laplace, Rademacher, exponential, and multivariate normal — plus helpers
// for the subGaussian uncertainty model of §III-B.
//
// All experiment code takes an explicit *randx.RNG so that every table and
// figure in EXPERIMENTS.md is reproducible bit-for-bit from a seed.
package randx

import (
	"math"

	"datamarket/internal/linalg"
)

// RNG is a 64-bit permuted congruential generator (PCG-XSH-RR variant
// folded to 64-bit output via xorshift-multiply). It is deterministic,
// seedable, and cheap to split into independent streams.
type RNG struct {
	state uint64
	inc   uint64

	// cached second normal deviate from the Box-Muller pair
	hasGauss bool
	gauss    float64
}

// New returns a generator seeded with seed on the default stream.
func New(seed uint64) *RNG { return NewStream(seed, 0xda3e39cb94b95bdb) }

// NewStream returns a generator on an explicit stream; distinct stream
// values yield statistically independent sequences for the same seed.
func NewStream(seed, stream uint64) *RNG {
	r := &RNG{inc: (stream << 1) | 1}
	r.state = 0
	r.Uint64()
	r.state += seed
	r.Uint64()
	return r
}

// Split derives an independent child generator; the parent advances.
func (r *RNG) Split() *RNG {
	return NewStream(r.Uint64(), r.Uint64())
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	old := r.state
	r.state = old*6364136223846793005 + r.inc
	// Output permutation (xorshift + odd multiply, strengthens low bits).
	x := old ^ (old >> 33)
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Float64 returns a uniform value in [0, 1) with 53-bit resolution.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn with non-positive bound")
	}
	// Lemire-style rejection to avoid modulo bias.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Bool returns a fair coin flip.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the order of n elements via the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Normal returns a draw from N(mean, std²) via Box-Muller with caching.
func (r *RNG) Normal(mean, std float64) float64 {
	return mean + std*r.StdNormal()
}

// StdNormal returns a draw from N(0, 1).
func (r *RNG) StdNormal() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	// Box-Muller; u must avoid 0 for the log.
	var u float64
	for u == 0 {
		u = r.Float64()
	}
	v := r.Float64()
	rad := math.Sqrt(-2 * math.Log(u))
	r.gauss = rad * math.Sin(2*math.Pi*v)
	r.hasGauss = true
	return rad * math.Cos(2*math.Pi*v)
}

// Exponential returns a draw from Exp(rate), mean 1/rate.
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("randx: Exponential with non-positive rate")
	}
	var u float64
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Laplace returns a draw from the Laplace distribution with the given
// location and scale b (variance 2b²) — the noise family of the Laplace
// mechanism in differential privacy.
func (r *RNG) Laplace(loc, scale float64) float64 {
	if scale <= 0 {
		panic("randx: Laplace with non-positive scale")
	}
	u := r.Float64() - 0.5
	if u >= 0 {
		return loc - scale*math.Log(1-2*u)
	}
	return loc + scale*math.Log(1+2*u)
}

// Rademacher returns ±1 with equal probability; Rademacher variables are
// 1-subGaussian and appear in the paper's uncertainty discussion.
func (r *RNG) Rademacher() float64 {
	if r.Bool() {
		return 1
	}
	return -1
}

// NormalVector fills a fresh n-vector with i.i.d. N(0, std²) entries.
func (r *RNG) NormalVector(n int, std float64) linalg.Vector {
	v := make(linalg.Vector, n)
	for i := range v {
		v[i] = r.Normal(0, std)
	}
	return v
}

// UniformVector fills a fresh n-vector with i.i.d. U[lo, hi) entries.
func (r *RNG) UniformVector(n int, lo, hi float64) linalg.Vector {
	v := make(linalg.Vector, n)
	for i := range v {
		v[i] = r.Uniform(lo, hi)
	}
	return v
}

// OnSphere returns a uniform point on the unit sphere in dimension n.
func (r *RNG) OnSphere(n int) linalg.Vector {
	for {
		v := r.NormalVector(n, 1)
		if v.Normalize() > 0 {
			return v
		}
	}
}

// InBall returns a uniform point in the unit ball in dimension n.
func (r *RNG) InBall(n int) linalg.Vector {
	v := r.OnSphere(n)
	radius := math.Pow(r.Float64(), 1/float64(n))
	return v.Scale(radius)
}
