package randx

import (
	"math"
	"testing"

	"datamarket/internal/linalg"
)

func TestMultivariateNormalMoments(t *testing.T) {
	mean := linalg.VectorOf(1, -2)
	cov := linalg.MatrixFromRows([][]float64{{2, 0.5}, {0.5, 1}})
	mvn, err := NewMultivariateNormal(mean, cov)
	if err != nil {
		t.Fatal(err)
	}
	if mvn.Dim() != 2 {
		t.Fatalf("Dim = %d", mvn.Dim())
	}
	r := New(11)
	const n = 100000
	var s0, s1, s00, s11, s01 float64
	for i := 0; i < n; i++ {
		x := mvn.Sample(r)
		d0, d1 := x[0]-1, x[1]+2
		s0 += d0
		s1 += d1
		s00 += d0 * d0
		s11 += d1 * d1
		s01 += d0 * d1
	}
	if math.Abs(s0/n) > 0.02 || math.Abs(s1/n) > 0.02 {
		t.Errorf("mean off: %v %v", s0/n, s1/n)
	}
	if math.Abs(s00/n-2) > 0.05 || math.Abs(s11/n-1) > 0.03 || math.Abs(s01/n-0.5) > 0.03 {
		t.Errorf("cov off: %v %v %v", s00/n, s11/n, s01/n)
	}
}

func TestMultivariateNormalErrors(t *testing.T) {
	if _, err := NewMultivariateNormal(linalg.VectorOf(1), linalg.Identity(2)); err == nil {
		t.Fatal("expected shape error")
	}
	bad := linalg.MatrixFromRows([][]float64{{1, 2}, {2, 1}})
	if _, err := NewMultivariateNormal(linalg.VectorOf(0, 0), bad); err == nil {
		t.Fatal("expected non-PD error")
	}
}

func TestStandardNormalSampler(t *testing.T) {
	mvn := NewStandardNormal(3)
	r := New(12)
	x := mvn.Sample(r)
	if len(x) != 3 || !x.IsFinite() {
		t.Fatalf("bad sample %v", x)
	}
}

func TestSubGaussianFamilies(t *testing.T) {
	r := New(13)
	for _, kind := range []NoiseKind{NoiseNormal, NoiseUniform, NoiseRademacher} {
		s, err := NewSubGaussianNoise(kind, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if s.Sigma() != 0.5 {
			t.Fatalf("Sigma = %v", s.Sigma())
		}
		const n = 100000
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			x := s.Sample(r)
			sum += x
			sumsq += x * x
		}
		mean := sum / n
		if math.Abs(mean) > 0.01 {
			t.Errorf("kind %d mean = %v", kind, mean)
		}
		// All three families here have variance σ² by construction.
		varc := sumsq/n - mean*mean
		if math.Abs(varc-0.25)/0.25 > 0.05 {
			t.Errorf("kind %d variance = %v, want ~0.25", kind, varc)
		}
	}
}

func TestSubGaussianZeroAndNone(t *testing.T) {
	r := New(14)
	z, err := NewSubGaussianNoise(NoiseNormal, 0)
	if err != nil {
		t.Fatal(err)
	}
	if z.Sample(r) != 0 {
		t.Fatal("sigma=0 must sample 0")
	}
	none, _ := NewSubGaussianNoise(NoiseNone, 1)
	if none.Sample(r) != 0 {
		t.Fatal("NoiseNone must sample 0")
	}
	if _, err := NewSubGaussianNoise(NoiseNormal, -1); err == nil {
		t.Fatal("expected error for negative sigma")
	}
}

func TestBufferRoundTrip(t *testing.T) {
	for _, T := range []int{10, 1000, 100000} {
		sigma := SigmaForBuffer(0.01, T)
		if got := Buffer(sigma, T); math.Abs(got-0.01) > 1e-12 {
			t.Fatalf("T=%d: Buffer(SigmaForBuffer(0.01)) = %v", T, got)
		}
	}
	if Buffer(0, 100) != 0 || Buffer(1, 1) != 0 {
		t.Fatal("degenerate Buffer cases must be 0")
	}
	if SigmaForBuffer(0, 100) != 0 {
		t.Fatal("SigmaForBuffer(0) must be 0")
	}
}

// The buffer must actually dominate the noise with overwhelming
// probability, which is the property Algorithm 2 relies on (Eq. 6).
func TestBufferDominatesNoise(t *testing.T) {
	r := New(15)
	T := 10000
	sigma := 0.05
	delta := Buffer(sigma, T)
	s, _ := NewSubGaussianNoise(NoiseNormal, sigma)
	exceed := 0
	for i := 0; i < T; i++ {
		if math.Abs(s.Sample(r)) > delta {
			exceed++
		}
	}
	// Theory says ≲ 1 exceedance in T rounds; allow small slack.
	if exceed > 3 {
		t.Fatalf("noise exceeded buffer %d/%d times (delta=%v)", exceed, T, delta)
	}
}
