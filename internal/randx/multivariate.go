package randx

import (
	"fmt"
	"math"

	"datamarket/internal/linalg"
)

// MultivariateNormal samples from N(mean, cov). The covariance is
// factorized once at construction; each draw costs one matrix-vector
// product over the Cholesky factor.
type MultivariateNormal struct {
	mean linalg.Vector
	chol *linalg.CholeskyFactor
}

// NewMultivariateNormal builds a sampler for N(mean, cov); cov must be
// symmetric positive definite.
func NewMultivariateNormal(mean linalg.Vector, cov *linalg.Matrix) (*MultivariateNormal, error) {
	if cov.Rows() != len(mean) || cov.Cols() != len(mean) {
		return nil, fmt.Errorf("randx: covariance %dx%d does not match mean length %d",
			cov.Rows(), cov.Cols(), len(mean))
	}
	f, err := linalg.Cholesky(cov)
	if err != nil {
		return nil, fmt.Errorf("randx: covariance not positive definite: %w", err)
	}
	return &MultivariateNormal{mean: mean.Clone(), chol: f}, nil
}

// NewStandardNormal builds a sampler for N(0, I_n).
func NewStandardNormal(n int) *MultivariateNormal {
	f, err := linalg.Cholesky(linalg.Identity(n))
	if err != nil {
		panic("randx: identity not PD — unreachable")
	}
	return &MultivariateNormal{mean: linalg.NewVector(n), chol: f}
}

// Dim returns the dimension of the distribution.
func (m *MultivariateNormal) Dim() int { return len(m.mean) }

// Sample draws one vector.
func (m *MultivariateNormal) Sample(r *RNG) linalg.Vector {
	z := r.NormalVector(len(m.mean), 1)
	x := m.chol.MulVec(z)
	for i := range x {
		x[i] += m.mean[i]
	}
	return x
}

// SubGaussianNoise models the market-value uncertainty δ_t of §III-B: a
// σ-subGaussian random variable. The concrete families the paper cites —
// normal, bounded-uniform, and Rademacher — are all provided.
type SubGaussianNoise struct {
	kind  NoiseKind
	sigma float64
}

// NoiseKind selects the subGaussian family.
type NoiseKind int

const (
	// NoiseNone yields identically zero noise (the certain setting).
	NoiseNone NoiseKind = iota
	// NoiseNormal yields N(0, σ²), which is σ-subGaussian with C = 2.
	NoiseNormal
	// NoiseUniform yields U[−σ√3, σ√3] (variance σ²), bounded hence subGaussian.
	NoiseUniform
	// NoiseRademacher yields ±σ with equal probability.
	NoiseRademacher
)

// NewSubGaussianNoise returns a sampler with parameter sigma ≥ 0.
func NewSubGaussianNoise(kind NoiseKind, sigma float64) (*SubGaussianNoise, error) {
	if sigma < 0 {
		return nil, fmt.Errorf("randx: negative sigma %g", sigma)
	}
	return &SubGaussianNoise{kind: kind, sigma: sigma}, nil
}

// Sigma returns the subGaussian parameter.
func (s *SubGaussianNoise) Sigma() float64 { return s.sigma }

// Sample draws one noise value.
func (s *SubGaussianNoise) Sample(r *RNG) float64 {
	if s.sigma == 0 {
		return 0
	}
	switch s.kind {
	case NoiseNone:
		return 0
	case NoiseNormal:
		return r.Normal(0, s.sigma)
	case NoiseUniform:
		h := s.sigma * math.Sqrt(3)
		return r.Uniform(-h, h)
	case NoiseRademacher:
		return s.sigma * r.Rademacher()
	default:
		panic(fmt.Sprintf("randx: unknown noise kind %d", s.kind))
	}
}

// Buffer returns the uncertainty buffer δ = √(2 log C)·σ·log T used by
// Algorithm 2 so that P(|δ_t| > δ) ≤ T^{−log T} (Eq. 5 of the paper), with
// C = 2 as for the normal family.
func Buffer(sigma float64, T int) float64 {
	if sigma == 0 || T < 2 {
		return 0
	}
	return math.Sqrt(2*math.Log(2)) * sigma * math.Log(float64(T))
}

// SigmaForBuffer inverts Buffer: the σ whose buffer at horizon T is delta.
// The paper's experiments fix δ = 0.01 and derive σ this way (§V-A).
func SigmaForBuffer(delta float64, T int) float64 {
	if delta == 0 || T < 2 {
		return 0
	}
	return delta / (math.Sqrt(2*math.Log(2)) * math.Log(float64(T)))
}
