package loadgen

import (
	"context"
	"fmt"

	"datamarket/api"
	"datamarket/client"
)

// Config parameterizes the scenarios. The zero value plus a Seed is a
// valid full-size configuration; withDefaults fills the rest. Every
// scenario has a deterministic synthetic fallback, so the CSV paths are
// optional everywhere.
type Config struct {
	// Seed drives every generator and worker RNG.
	Seed uint64
	// Prefix namespaces the stream/market IDs the scenario provisions.
	Prefix string
	// Skew is the popularity skew of the stream/owner choosers
	// (0 = uniform, ~1 = Zipf-like; default 1).
	Skew float64
	// Batch is the rounds/trades carried per batched SDK call
	// (default 64).
	Batch int

	// Listings sizes the accommodation table (default 2000).
	Listings int
	// AirbnbCSV optionally loads real listings (WriteListings schema)
	// instead of the synthetic generator.
	AirbnbCSV string

	// Streams is the ad-impression stream fan-out (default 32).
	Streams int
	// HashDim is the hashed CTR feature dimension (default 128, §V-C).
	HashDim int
	// PoolSize is the pre-generated impression pool workers cycle
	// through (default 4096).
	PoolSize int
	// AvazuCSV optionally loads real impressions (WriteImpressions
	// schema).
	AvazuCSV string

	// Users and Movies size the ratings corpus (defaults 400/600); the
	// users become the hosted market's data owners.
	Users  int
	Movies int
	// Support is the number of nonzero weights per market query
	// (default 16, the sparse-query shape).
	Support int
	// MovieLensCSV optionally loads real ratings (MovieLens schema).
	MovieLensCSV string
}

func (c Config) withDefaults(name string) Config {
	if c.Prefix == "" {
		c.Prefix = name
	}
	if c.Skew == 0 {
		c.Skew = 1
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.Listings <= 0 {
		c.Listings = 2000
	}
	if c.Streams <= 0 {
		c.Streams = 32
	}
	if c.HashDim <= 0 {
		c.HashDim = 128
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 4096
	}
	if c.Users <= 0 {
		c.Users = 400
	}
	if c.Movies <= 0 {
		c.Movies = 600
	}
	if c.Support <= 0 {
		c.Support = 16
	}
	return c
}

// scenarioHorizon is the horizon T the scenarios provision streams and
// markets with — large enough that the exploration schedule never runs
// out mid-load-test.
const scenarioHorizon = 10_000_000

// ScenarioNames lists the scenarios in report order.
var ScenarioNames = []string{"accommodation", "impression", "ratings", "mixed"}

// ByName builds the named scenario.
func ByName(name string, cfg Config) (Workload, error) {
	switch name {
	case "accommodation":
		return NewAccommodation(cfg), nil
	case "impression":
		return NewImpression(cfg), nil
	case "ratings":
		return NewRatings(cfg), nil
	case "mixed":
		return NewMixed(cfg), nil
	}
	return nil, fmt.Errorf("loadgen: unknown scenario %q (want one of %v)", name, ScenarioNames)
}

// codedError carries a loadgen-assigned error-count key for failures
// that are not SDK transport errors (e.g. per-round errors inside an
// otherwise-successful batch response).
type codedError struct {
	code string
	msg  string
}

func (e *codedError) Error() string { return e.msg }

// ensureStream creates a stream, replacing any leftover with the same
// ID from a previous run against a persistent broker.
func ensureStream(ctx context.Context, c *client.Client, req api.CreateStreamRequest) error {
	_, err := c.CreateStream(ctx, req)
	if client.ErrorCode(err) == api.CodeStreamExists {
		if err = c.DeleteStream(ctx, req.ID, true); err != nil {
			return fmt.Errorf("loadgen: replacing stream %q: %w", req.ID, err)
		}
		_, err = c.CreateStream(ctx, req)
	}
	if err != nil {
		return fmt.Errorf("loadgen: creating stream %q: %w", req.ID, err)
	}
	return nil
}

// ensureMarket creates a market, replacing any leftover with the same ID.
func ensureMarket(ctx context.Context, c *client.Client, req api.CreateMarketRequest) error {
	_, err := c.CreateMarket(ctx, req)
	if client.ErrorCode(err) == api.CodeMarketExists {
		if err = c.DeleteMarket(ctx, req.ID); err != nil {
			return fmt.Errorf("loadgen: replacing market %q: %w", req.ID, err)
		}
		_, err = c.CreateMarket(ctx, req)
	}
	if err != nil {
		return fmt.Errorf("loadgen: creating market %q: %w", req.ID, err)
	}
	return nil
}

// streamsSummary aggregates regret stats across a scenario's streams.
func streamsSummary(ctx context.Context, c *client.Client, ids []string) (*ScenarioSummary, error) {
	s := &ScenarioSummary{Streams: len(ids)}
	for _, id := range ids {
		st, err := c.Stats(ctx, id)
		if err != nil {
			return nil, fmt.Errorf("loadgen: stats for %q: %w", id, err)
		}
		s.Rounds += st.Regret.Rounds
		s.CumulativeRegret += st.Regret.CumulativeRegret
		s.CumulativeValue += st.Regret.CumulativeValue
		s.CumulativeRevenue += st.Regret.CumulativeRevenue
	}
	if s.CumulativeValue > 0 {
		s.RegretRatio = round3(s.CumulativeRegret / s.CumulativeValue)
	}
	return s, nil
}
