package loadgen

import (
	"context"
	"fmt"
	"math"
	"os"

	"datamarket/api"
	"datamarket/client"
	"datamarket/internal/dataset"
	"datamarket/internal/randx"
)

// Ratings is the MovieLens scenario (§V-A): the rating corpus's users
// become the data owners of one hosted market (owner value = mean
// rating, range = the 4.5-star scale span, tanh compensation
// contracts), and workers issue sparse aggregation queries — Support
// nonzero weights drawn by the skew chooser, so popular raters are
// queried most — through /trade/batch. The market ledger afterwards
// provides the revenue/compensation/profit summary.
type Ratings struct {
	cfg      Config
	c        *client.Client
	marketID string
	owners   int
}

// NewRatings builds the scenario; Setup does the provisioning.
func NewRatings(cfg Config) *Ratings {
	return &Ratings{cfg: cfg.withDefaults("ratings")}
}

func (r *Ratings) Name() string { return "ratings" }

func (r *Ratings) ratings() ([]dataset.Rating, error) {
	if r.cfg.MovieLensCSV != "" {
		f, err := os.Open(r.cfg.MovieLensCSV)
		if err != nil {
			return nil, fmt.Errorf("loadgen: opening MovieLens CSV: %w", err)
		}
		defer f.Close()
		// Cap the read so a full 20M-row corpus doesn't stall setup; the
		// owner population is what matters, not every rating.
		return dataset.ParseRatings(f, r.cfg.Users*200)
	}
	return dataset.GenerateRatings(dataset.MovieLensConfig{
		Users: r.cfg.Users, Movies: r.cfg.Movies, RatingsPerUser: 20, Seed: r.cfg.Seed,
	})
}

func (r *Ratings) Setup(ctx context.Context, c *client.Client) error {
	r.c = c
	rs, err := r.ratings()
	if err != nil {
		return err
	}
	profiles := dataset.UserProfiles(rs)
	if len(profiles) == 0 {
		return fmt.Errorf("loadgen: ratings corpus yields no owners")
	}
	values, ranges := dataset.OwnerValues(profiles)
	owners := make([]api.OwnerSpec, len(profiles))
	for i := range owners {
		owners[i] = api.OwnerSpec{
			Value: values[i], Range: ranges[i],
			Contract: api.ContractSpec{Type: "tanh", Rho: 1, Eta: 10},
		}
	}
	r.owners = len(owners)
	r.marketID = r.cfg.Prefix
	return ensureMarket(ctx, c, api.CreateMarketRequest{
		ID: r.marketID, Owners: owners, Seed: r.cfg.Seed,
		Family: "linear", Horizon: scenarioHorizon,
	})
}

func (r *Ratings) NewWorker(id int) (Worker, error) {
	rng := randx.NewStream(r.cfg.Seed+0x2a71, uint64(id))
	support := r.cfg.Support
	if support > r.owners {
		support = r.owners
	}
	w := &ratingsWorker{
		wl:      r,
		rng:     rng,
		pick:    NewChooser(r.owners, r.cfg.Skew, rng),
		support: support,
		scratch: make(map[int]struct{}, support),
		trades:  make([]api.TradeRequest, r.cfg.Batch),
		weights: make([][]float64, r.cfg.Batch),
		prev:    make([][]int, r.cfg.Batch),
	}
	for k := range w.weights {
		w.weights[k] = make([]float64, r.owners)
	}
	return w, nil
}

func (r *Ratings) Summary(ctx context.Context) (*ScenarioSummary, error) {
	ms, err := r.c.MarketStats(ctx, r.marketID)
	if err != nil {
		return nil, fmt.Errorf("loadgen: market stats for %q: %w", r.marketID, err)
	}
	s := &ScenarioSummary{
		Rounds:             ms.Regret.Rounds,
		CumulativeRegret:   ms.Regret.CumulativeRegret,
		CumulativeValue:    ms.Regret.CumulativeValue,
		CumulativeRevenue:  ms.Regret.CumulativeRevenue,
		RegretRatio:        ms.Regret.RegretRatio,
		Trades:             ms.Rounds,
		Sold:               ms.Sold,
		MarketRevenue:      ms.Revenue,
		MarketCompensation: ms.Compensation,
		MarketProfit:       ms.Profit,
	}
	return s, nil
}

type ratingsWorker struct {
	wl      *Ratings
	rng     *randx.RNG
	pick    *Chooser
	support int
	scratch map[int]struct{}
	trades  []api.TradeRequest
	weights [][]float64
	prev    [][]int // previous support per slot, zeroed before reuse
}

func (w *ratingsWorker) Issue(ctx context.Context) (int, error) {
	for k := range w.trades {
		wts := w.weights[k]
		for _, i := range w.prev[k] {
			wts[i] = 0
		}
		sup := w.pick.NextDistinct(w.support, w.scratch)
		for _, i := range sup {
			wts[i] = math.Abs(w.rng.Normal(0, 1))
		}
		w.prev[k] = sup
		w.trades[k] = api.TradeRequest{
			Weights: wts, NoiseVariance: 1,
			Valuation: w.rng.Uniform(0, 5),
		}
	}
	results, err := w.wl.c.TradeBatch(ctx, w.wl.marketID, w.trades)
	if err != nil {
		return 0, err
	}
	units := 0
	for _, r := range results {
		if r.Error == "" {
			units++
		}
	}
	if failed := len(results) - units; failed > 0 {
		return units, &codedError{code: "trade_error",
			msg: fmt.Sprintf("loadgen: %d/%d trades failed in batch", failed, len(results))}
	}
	return units, nil
}
