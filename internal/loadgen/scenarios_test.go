package loadgen

import (
	"context"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"datamarket/client"
	"datamarket/internal/server"
)

// smokeConfig is a tiny synthetic configuration every scenario can run
// in well under a second.
func smokeConfig() Config {
	return Config{
		Seed: 11, Batch: 8, Listings: 60, Streams: 4, PoolSize: 256,
		Users: 40, Movies: 80, Support: 4,
	}
}

func newSDKClient(t *testing.T) *client.Client {
	t.Helper()
	ts := httptest.NewServer(server.NewServer(nil).Handler())
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestScenariosEndToEnd(t *testing.T) {
	for _, name := range ScenarioNames {
		t.Run(name, func(t *testing.T) {
			c := newSDKClient(t)
			wl, err := ByName(name, smokeConfig())
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			if err := wl.Setup(ctx, c); err != nil {
				t.Fatalf("setup: %v", err)
			}
			out, err := ClosedLoop(ctx, wl, ClosedLoopConfig{
				Concurrency: 4, Duration: 150 * time.Millisecond,
			})
			if err != nil {
				t.Fatalf("closed loop: %v", err)
			}
			if cl, ok := wl.(io.Closer); ok {
				if err := cl.Close(); err != nil {
					t.Fatalf("close: %v", err)
				}
			}
			if out.ErrorTotal() != 0 {
				t.Fatalf("errors: %v", out.Errors)
			}
			if out.Issued == 0 || out.Units == 0 {
				t.Fatalf("no work done: issued %d units %d", out.Issued, out.Units)
			}
			if out.Latency.Count() == 0 {
				t.Fatalf("no latencies recorded")
			}
			sum, err := wl.Summary(ctx)
			if err != nil {
				t.Fatalf("summary: %v", err)
			}
			if sum == nil {
				t.Fatal("nil summary")
			}
			// Every scenario's server-side round/trade count must reflect
			// the client-side units (mixed splits units across substrates,
			// so only a loose lower bound holds there).
			total := int64(sum.Rounds + sum.Trades)
			if total == 0 {
				t.Fatalf("summary shows no server-side work: %+v", sum)
			}
			if name != "mixed" && total < out.Units {
				t.Errorf("server-side %d < client units %d", total, out.Units)
			}
		})
	}
}

func TestScenarioOpenLoopEndToEnd(t *testing.T) {
	c := newSDKClient(t)
	wl := NewImpression(smokeConfig())
	ctx := context.Background()
	if err := wl.Setup(ctx, c); err != nil {
		t.Fatal(err)
	}
	out, err := OpenLoop(ctx, wl, OpenLoopConfig{
		Rate: 200, Duration: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.ErrorTotal() != 0 {
		t.Fatalf("errors: %v", out.Errors)
	}
	if out.Issued+out.Dropped != 40 {
		t.Errorf("issued %d + dropped %d != scheduled 40", out.Issued, out.Dropped)
	}
	if out.Units < out.Issued*8 {
		t.Errorf("units %d < issued %d × batch 8", out.Units, out.Issued)
	}
}

func TestResultOfRendersOutcome(t *testing.T) {
	wl := &fakeWorkload{latency: time.Millisecond}
	out, err := ClosedLoop(context.Background(), wl, ClosedLoopConfig{
		Concurrency: 2, Duration: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := ResultOf(out)
	if r.Mode != "closed" || r.Concurrency != 2 {
		t.Errorf("mode/concurrency: %+v", r)
	}
	if r.Issued != out.Issued || r.Units != out.Units {
		t.Errorf("counts: %+v vs %+v", r, out)
	}
	if r.UnitsPerSec <= 0 || r.LatencyMicros.Count != out.Latency.Count() {
		t.Errorf("derived fields: %+v", r)
	}
}
