// Package loadgen is the scenario engine behind cmd/loadgen: it drives
// a live brokerd entirely through the public SDK with traffic shaped by
// the paper's evaluation datasets (§VI) — Airbnb accommodation pricing,
// Avazu ad-impression CTR batches, MovieLens hosted-market trades, and
// a mixed multi-family blend. Each scenario is a Workload that knows how
// to provision its streams or markets, mint per-worker traffic sources,
// and pull the server-side regret/revenue summary afterwards; the
// drivers (OpenLoop, ClosedLoop) are workload-agnostic.
//
// Every scenario has a deterministic synthetic fallback built on the
// internal/dataset generators, so the whole engine runs without any raw
// CSV present — that is what `make loadgen-smoke` exercises in CI.
package loadgen

import (
	"context"
	"errors"
	"time"

	"datamarket/client"
	"datamarket/internal/histo"
)

// Worker is one traffic source: Issue performs a single operation (one
// SDK call, possibly carrying a batch) and reports how many work units
// (rounds or trades) it completed. Workers are used by a single
// goroutine at a time; anything shared across workers must be
// concurrency-safe.
type Worker interface {
	Issue(ctx context.Context) (units int, err error)
}

// Workload is one scenario: Setup provisions server-side state through
// the SDK, NewWorker mints deterministic per-worker traffic sources,
// and Summary pulls the scenario's server-side outcome (stream regret
// stats, market ledger totals) after the drivers finish.
type Workload interface {
	Name() string
	Setup(ctx context.Context, c *client.Client) error
	NewWorker(id int) (Worker, error)
	Summary(ctx context.Context) (*ScenarioSummary, error)
}

// Outcome is what a driver run measured, client-side.
type Outcome struct {
	// Mode is "open" or "closed".
	Mode string
	// TargetRate is the open-loop schedule rate (ops/s); 0 for closed.
	TargetRate float64
	// Concurrency is the worker count (closed) or the outstanding-op
	// bound (open).
	Concurrency int
	// Elapsed covers the full run including the drain of in-flight ops.
	Elapsed time.Duration
	// Issued counts operations dispatched; Dropped counts open-loop
	// schedule slots abandoned because the outstanding bound was hit
	// (never silently — they are the overload signal).
	Issued  int64
	Dropped int64
	// Units counts completed work units (rounds/trades) across all ops.
	Units int64
	// Errors counts failed ops by api error code ("transport" for
	// failures without one).
	Errors map[string]int64
	// Latency holds per-op latency in nanoseconds. Open-loop latencies
	// are measured from the op's scheduled time, not its dispatch time,
	// so queueing delay is charged to the server (the
	// coordinated-omission guard).
	Latency *histo.Histogram
}

// ErrorTotal sums the error counts.
func (o *Outcome) ErrorTotal() int64 {
	var n int64
	for _, c := range o.Errors {
		n += c
	}
	return n
}

// classify maps an Issue error to a counting key: a loadgen-assigned
// code, the api error code, or "transport" for plain network failures.
func classify(err error) string {
	var ce *codedError
	if errors.As(err, &ce) {
		return ce.code
	}
	if code := client.ErrorCode(err); code != "" {
		return string(code)
	}
	return "transport"
}
