package loadgen

import (
	"context"
	"fmt"
	"math"
	"os"

	"datamarket/api"
	"datamarket/client"
	"datamarket/internal/dataset"
	"datamarket/internal/feature"
	"datamarket/internal/randx"
)

// Impression is the Avazu scenario (§V-C): a pool of hashed-CTR
// impression vectors is priced against a fan-out of streams whose
// popularity follows the key-skew chooser — a few hot ad slots take
// most of the traffic, the shape of real ad logs. Workers drive
// /price/batch with Batch rounds per call, the high-throughput batch
// path. Valuations are the impressions' click probabilities under the
// generator's hidden logistic model (or a click-derived value for real
// CSV rows), so stream regret decays as the mechanisms learn.
type Impression struct {
	cfg     Config
	c       *client.Client
	streams []string
	xs      [][]float64
	vals    []float64
}

// NewImpression builds the scenario; Setup does the provisioning.
func NewImpression(cfg Config) *Impression {
	return &Impression{cfg: cfg.withDefaults("impression")}
}

func (m *Impression) Name() string { return "impression" }

// buildPool materializes the impression sample pool workers cycle over.
func (m *Impression) buildPool() error {
	if m.cfg.AvazuCSV != "" {
		f, err := os.Open(m.cfg.AvazuCSV)
		if err != nil {
			return fmt.Errorf("loadgen: opening Avazu CSV: %w", err)
		}
		defer f.Close()
		imps, err := dataset.ParseImpressions(f, m.cfg.PoolSize)
		if err != nil {
			return err
		}
		if len(imps) == 0 {
			return fmt.Errorf("loadgen: Avazu CSV %q has no rows", m.cfg.AvazuCSV)
		}
		hasher, err := feature.NewHasher(m.cfg.HashDim)
		if err != nil {
			return err
		}
		m.xs = make([][]float64, len(imps))
		m.vals = make([]float64, len(imps))
		for i, im := range imps {
			m.xs[i] = hasher.Encode(im.Fields)
			// Real rows carry no ground-truth click probability; value a
			// click as a full conversion and a miss as residual brand value.
			if im.Click {
				m.vals[i] = 1
			} else {
				m.vals[i] = 0.05
			}
		}
		return nil
	}
	src, err := dataset.NewAvazuStream(dataset.AvazuConfig{
		HashDim: m.cfg.HashDim, ActiveWeights: 21, Seed: m.cfg.Seed,
	})
	if err != nil {
		return err
	}
	truth := src.Truth()
	m.xs = make([][]float64, m.cfg.PoolSize)
	m.vals = make([]float64, m.cfg.PoolSize)
	for i := range m.xs {
		_, x := src.Next()
		m.xs[i] = x
		m.vals[i] = 1 / (1 + math.Exp(-x.Dot(truth)))
	}
	return nil
}

func (m *Impression) Setup(ctx context.Context, c *client.Client) error {
	m.c = c
	if err := m.buildPool(); err != nil {
		return err
	}
	m.streams = make([]string, m.cfg.Streams)
	for i := range m.streams {
		m.streams[i] = fmt.Sprintf("%s-%03d", m.cfg.Prefix, i)
		err := ensureStream(ctx, c, api.CreateStreamRequest{
			ID: m.streams[i], Family: "linear", Dim: m.cfg.HashDim,
			Horizon: scenarioHorizon,
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func (m *Impression) NewWorker(id int) (Worker, error) {
	rng := randx.NewStream(m.cfg.Seed+0x1249, uint64(id))
	return &impWorker{
		wl:     m,
		pick:   NewChooser(len(m.streams), m.cfg.Skew, rng),
		cursor: rng.Intn(len(m.xs)),
		rounds: make([]api.BatchPriceRound, m.cfg.Batch),
		vals:   make([]float64, m.cfg.Batch),
	}, nil
}

func (m *Impression) Summary(ctx context.Context) (*ScenarioSummary, error) {
	return streamsSummary(ctx, m.c, m.streams)
}

type impWorker struct {
	wl     *Impression
	pick   *Chooser
	cursor int
	rounds []api.BatchPriceRound
	vals   []float64
}

func (w *impWorker) Issue(ctx context.Context) (int, error) {
	id := w.wl.streams[w.pick.Next()]
	for k := range w.rounds {
		i := w.cursor
		w.cursor++
		if w.cursor == len(w.wl.xs) {
			w.cursor = 0
		}
		w.vals[k] = w.wl.vals[i]
		w.rounds[k] = api.BatchPriceRound{Features: w.wl.xs[i], Valuation: &w.vals[k]}
	}
	results, err := w.wl.c.PriceBatch(ctx, id, w.rounds)
	if err != nil {
		return 0, err
	}
	units := 0
	for _, r := range results {
		if r.Error == "" {
			units++
		}
	}
	if failed := len(results) - units; failed > 0 {
		return units, &codedError{code: "round_error",
			msg: fmt.Sprintf("loadgen: %d/%d rounds failed in batch", failed, len(results))}
	}
	return units, nil
}
