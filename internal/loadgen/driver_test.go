package loadgen

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"datamarket/client"
	"datamarket/internal/randx"
)

// fakeWorkload mints workers that sleep for latency and then report one
// unit, optionally failing.
type fakeWorkload struct {
	latency time.Duration
	err     error
	issued  atomic.Int64
}

func (f *fakeWorkload) Name() string                                      { return "fake" }
func (f *fakeWorkload) Setup(context.Context, *client.Client) error       { return nil }
func (f *fakeWorkload) Summary(context.Context) (*ScenarioSummary, error) { return nil, nil }
func (f *fakeWorkload) NewWorker(int) (Worker, error) {
	return &fakeWorker{wl: f}, nil
}

type fakeWorker struct{ wl *fakeWorkload }

func (w *fakeWorker) Issue(ctx context.Context) (int, error) {
	w.wl.issued.Add(1)
	if d := w.wl.latency; d > 0 {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	if w.wl.err != nil {
		return 0, w.wl.err
	}
	return 1, nil
}

// TestOpenLoopPacingUnderSlowServer is the coordinated-omission guard:
// a server 12× slower than the arrival interval must not slow the
// arrival process down — the issued count stays pinned to
// rate × duration, and measured latency reflects the service time.
func TestOpenLoopPacingUnderSlowServer(t *testing.T) {
	const (
		rate     = 400.0
		duration = 300 * time.Millisecond
		latency  = 30 * time.Millisecond // 12× the 2.5ms arrival interval
	)
	wl := &fakeWorkload{latency: latency}
	out, err := OpenLoop(context.Background(), wl, OpenLoopConfig{
		Rate: rate, Duration: duration, MaxOutstanding: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(rate * duration.Seconds()) // 120 scheduled ops
	if out.Issued+out.Dropped != want {
		t.Fatalf("issued %d + dropped %d != scheduled %d", out.Issued, out.Dropped, want)
	}
	if out.Dropped != 0 {
		t.Errorf("dropped %d ops despite outstanding headroom", out.Dropped)
	}
	// A closed loop at this latency would manage only ~10 ops per worker;
	// the open loop must stay within tolerance of the schedule.
	if out.Issued < want*7/10 {
		t.Errorf("issued %d, want ≥ %d (70%% of schedule)", out.Issued, want*7/10)
	}
	if got := time.Duration(out.Latency.Quantile(0.5)); got < latency/2 {
		t.Errorf("p50 latency %v implausibly below the %v service time", got, latency)
	}
	if out.ErrorTotal() != 0 {
		t.Errorf("unexpected errors: %v", out.Errors)
	}
}

func TestOpenLoopDropsWhenOutstandingExhausted(t *testing.T) {
	// One outstanding slot and 50ms ops against a 2.5ms schedule: almost
	// every slot must be dropped, visibly, rather than stalling the clock.
	wl := &fakeWorkload{latency: 50 * time.Millisecond}
	out, err := OpenLoop(context.Background(), wl, OpenLoopConfig{
		Rate: 400, Duration: 200 * time.Millisecond, MaxOutstanding: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Dropped == 0 {
		t.Fatalf("expected drops with MaxOutstanding=1, got none (issued %d)", out.Issued)
	}
	if out.Issued+out.Dropped != int64(400*0.2) {
		t.Errorf("issued %d + dropped %d != scheduled 80", out.Issued, out.Dropped)
	}
}

func TestClosedLoop(t *testing.T) {
	wl := &fakeWorkload{latency: 2 * time.Millisecond}
	out, err := ClosedLoop(context.Background(), wl, ClosedLoopConfig{
		Concurrency: 4, Duration: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Issued == 0 || out.Units != out.Issued {
		t.Fatalf("issued %d units %d", out.Issued, out.Units)
	}
	// 4 workers × ~100 ops each; allow wide scheduling slack.
	if out.Issued < 100 {
		t.Errorf("issued %d, want ≥ 100", out.Issued)
	}
	if p50 := time.Duration(out.Latency.Quantile(0.5)); p50 < time.Millisecond || p50 > 50*time.Millisecond {
		t.Errorf("implausible p50 %v for a 2ms op", p50)
	}
}

func TestErrorClassification(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{errors.New("conn refused"), "transport"},
		{&codedError{code: "round_error", msg: "x"}, "round_error"},
	}
	for _, c := range cases {
		wl := &fakeWorkload{err: c.err}
		out, err := ClosedLoop(context.Background(), wl, ClosedLoopConfig{
			Concurrency: 1, Duration: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if out.Errors[c.want] == 0 {
			t.Errorf("error %v: counts %v, want key %q", c.err, out.Errors, c.want)
		}
	}
}

func TestChooser(t *testing.T) {
	rng := randx.New(3)
	// Uniform: every key drawn, roughly evenly.
	uni := NewChooser(8, 0, rng)
	counts := make([]int, 8)
	for i := 0; i < 8000; i++ {
		counts[uni.Next()]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("uniform chooser: key %d drawn %d/8000", i, c)
		}
	}
	// Skewed: rank 0 beats the tail by a wide margin.
	skew := NewChooser(64, 1.2, rng)
	counts = make([]int, 64)
	for i := 0; i < 20000; i++ {
		counts[skew.Next()]++
	}
	if counts[0] < 4*counts[32] {
		t.Errorf("skewed chooser: head %d not ≫ tail %d", counts[0], counts[32])
	}
	// Distinct draws are distinct and complete.
	scratch := make(map[int]struct{})
	got := skew.NextDistinct(16, scratch)
	if len(got) != 16 {
		t.Fatalf("NextDistinct returned %d keys, want 16", len(got))
	}
	seen := make(map[int]bool)
	for _, i := range got {
		if seen[i] || i < 0 || i >= 64 {
			t.Fatalf("bad distinct draw %v", got)
		}
		seen[i] = true
	}
	// Requesting more keys than exist returns them all.
	if got := uni.NextDistinct(99, scratch); len(got) != 8 {
		t.Errorf("NextDistinct over-ask: got %d keys, want 8", len(got))
	}
}
