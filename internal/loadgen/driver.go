package loadgen

import (
	"context"
	"fmt"
	"sync"
	"time"

	"datamarket/internal/histo"
)

// OpenLoopConfig tunes the target-rate driver.
type OpenLoopConfig struct {
	// Rate is the schedule rate in ops/s. Required.
	Rate float64
	// Duration is the schedule window; the driver issues
	// round(Rate×Duration) ops on an absolute schedule and then drains.
	Duration time.Duration
	// MaxOutstanding bounds in-flight ops (default 4096). A schedule
	// slot that finds the bound exhausted is counted as dropped rather
	// than making the schedule wait — the driver never lets a slow
	// server slow the arrival process down (coordinated omission).
	MaxOutstanding int
}

// OpenLoop drives wl at a fixed arrival rate. Op i is due at
// start + i/Rate regardless of how prior ops are faring, and latency is
// measured from that scheduled time, so response times include any
// queueing a saturated server causes.
func OpenLoop(ctx context.Context, wl Workload, cfg OpenLoopConfig) (*Outcome, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: open loop needs positive Rate, got %g", cfg.Rate)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: open loop needs positive Duration, got %v", cfg.Duration)
	}
	maxOut := cfg.MaxOutstanding
	if maxOut <= 0 {
		maxOut = 4096
	}
	out := &Outcome{
		Mode:        "open",
		TargetRate:  cfg.Rate,
		Concurrency: maxOut,
		Errors:      make(map[string]int64),
		Latency:     histo.New(),
	}
	n := int(cfg.Rate*cfg.Duration.Seconds() + 0.5)
	if n < 1 {
		n = 1
	}
	var (
		sem     = make(chan struct{}, maxOut)
		free    = make(chan Worker, maxOut) // pooled workers, created on demand
		workers int
		wg      sync.WaitGroup
		mu      sync.Mutex // guards out.Units and out.Errors
	)
	interval := float64(time.Second) / cfg.Rate
	start := time.Now()
schedule:
	for i := 0; i < n; i++ {
		sched := start.Add(time.Duration(float64(i) * interval))
		if d := time.Until(sched); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				break schedule
			}
		}
		select {
		case <-ctx.Done():
			break schedule
		default:
		}
		select {
		case sem <- struct{}{}:
		default:
			out.Dropped++
			continue
		}
		var w Worker
		select {
		case w = <-free:
		default:
			var err error
			if w, err = wl.NewWorker(workers); err != nil {
				return nil, fmt.Errorf("loadgen: minting worker %d: %w", workers, err)
			}
			workers++
		}
		out.Issued++
		wg.Add(1)
		go func(w Worker, sched time.Time) {
			defer func() {
				free <- w
				<-sem
				wg.Done()
			}()
			units, err := w.Issue(ctx)
			out.Latency.RecordDuration(time.Since(sched))
			mu.Lock()
			out.Units += int64(units)
			if err != nil {
				out.Errors[classify(err)]++
			}
			mu.Unlock()
		}(w, sched)
	}
	wg.Wait()
	out.Elapsed = time.Since(start)
	return out, nil
}

// ClosedLoopConfig tunes the fixed-concurrency driver.
type ClosedLoopConfig struct {
	// Concurrency is the number of workers issuing back-to-back.
	Concurrency int
	// Duration is how long workers keep issuing.
	Duration time.Duration
}

// ClosedLoop drives wl with Concurrency workers, each issuing the next
// op as soon as the previous one returns. Latency here is plain per-op
// service time; throughput is the natural saturation measure.
func ClosedLoop(ctx context.Context, wl Workload, cfg ClosedLoopConfig) (*Outcome, error) {
	if cfg.Concurrency <= 0 {
		return nil, fmt.Errorf("loadgen: closed loop needs positive Concurrency, got %d", cfg.Concurrency)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: closed loop needs positive Duration, got %v", cfg.Duration)
	}
	out := &Outcome{
		Mode:        "closed",
		Concurrency: cfg.Concurrency,
		Errors:      make(map[string]int64),
		Latency:     histo.New(),
	}
	workers := make([]Worker, cfg.Concurrency)
	for i := range workers {
		w, err := wl.NewWorker(i)
		if err != nil {
			return nil, fmt.Errorf("loadgen: minting worker %d: %w", i, err)
		}
		workers[i] = w
	}
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for _, w := range workers {
		wg.Add(1)
		go func(w Worker) {
			defer wg.Done()
			var issued, units int64
			errs := make(map[string]int64)
			for time.Now().Before(deadline) && runCtx.Err() == nil {
				t0 := time.Now()
				u, err := w.Issue(runCtx)
				if err != nil && runCtx.Err() != nil && u == 0 {
					// The deadline tore the op down mid-flight; don't count
					// the teardown as a served op or a server error.
					break
				}
				out.Latency.RecordDuration(time.Since(t0))
				issued++
				units += int64(u)
				if err != nil {
					errs[classify(err)]++
				}
			}
			mu.Lock()
			out.Issued += issued
			out.Units += units
			for k, v := range errs {
				out.Errors[k] += v
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	out.Elapsed = time.Since(start)
	return out, nil
}
