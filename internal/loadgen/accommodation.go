package loadgen

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"

	"datamarket/api"
	"datamarket/client"
	"datamarket/internal/dataset"
	"datamarket/internal/randx"
)

// Accommodation is the Airbnb scenario (§V-B): listings are grouped
// into city × room-type segments, each segment hosted as one pricing
// stream with the reserve constraint on; workers price listings through
// the SDK Flusher, so the wire sees coalesced multi-stream batches —
// the shape a real pricing front-end produces. Valuations are the
// listings' log prices, so the streams genuinely learn the hedonic
// model under load and the end-of-run regret summary is meaningful.
type Accommodation struct {
	cfg     Config
	c       *client.Client
	flusher *client.Flusher
	streams []string
	ops     []accOp
}

// accOp is one pre-featurized pricing opportunity.
type accOp struct {
	stream    string
	features  []float64
	reserve   float64
	valuation float64
}

// NewAccommodation builds the scenario; Setup does the provisioning.
func NewAccommodation(cfg Config) *Accommodation {
	return &Accommodation{cfg: cfg.withDefaults("accommodation")}
}

func (a *Accommodation) Name() string { return "accommodation" }

// roomCode collapses the dataset's room-type labels into id-safe slugs.
func roomCode(roomType string) string {
	switch roomType {
	case "Entire home/apt":
		return "entire"
	case "Private room":
		return "private"
	case "Shared room":
		return "shared"
	}
	return "other"
}

func (a *Accommodation) listings() ([]dataset.Listing, error) {
	if a.cfg.AirbnbCSV != "" {
		f, err := os.Open(a.cfg.AirbnbCSV)
		if err != nil {
			return nil, fmt.Errorf("loadgen: opening Airbnb CSV: %w", err)
		}
		defer f.Close()
		return dataset.ParseListings(f, a.cfg.Listings)
	}
	ls, _, _, err := dataset.GenerateListings(dataset.AirbnbConfig{
		Count: a.cfg.Listings, Seed: a.cfg.Seed, NoiseStd: 0.475,
	})
	return ls, err
}

func (a *Accommodation) Setup(ctx context.Context, c *client.Client) error {
	a.c = c
	ls, err := a.listings()
	if err != nil {
		return err
	}
	segments := make(map[string]bool)
	a.ops = make([]accOp, 0, len(ls))
	for i := range ls {
		l := &ls[i]
		x, err := dataset.FeaturizeListing(l)
		if err != nil {
			return err
		}
		id := fmt.Sprintf("%s-%s-%s", a.cfg.Prefix,
			strings.ToLower(l.City), roomCode(l.RoomType))
		segments[id] = true
		a.ops = append(a.ops, accOp{
			stream:   id,
			features: x,
			// The broker never sells below half the listing's value; the
			// valuation is the log price the hedonic model explains.
			reserve:   0.5 * l.LogPrice,
			valuation: l.LogPrice,
		})
	}
	a.streams = make([]string, 0, len(segments))
	for id := range segments {
		a.streams = append(a.streams, id)
	}
	sort.Strings(a.streams)
	for _, id := range a.streams {
		err := ensureStream(ctx, c, api.CreateStreamRequest{
			ID: id, Family: "linear", Dim: dataset.AirbnbFeatureDim,
			Reserve: true, Horizon: scenarioHorizon,
		})
		if err != nil {
			return err
		}
	}
	a.flusher = client.NewFlusher(c, client.FlusherConfig{})
	return nil
}

func (a *Accommodation) NewWorker(id int) (Worker, error) {
	rng := randx.NewStream(a.cfg.Seed+0xacc0, uint64(id))
	return &accWorker{wl: a, pick: NewChooser(len(a.ops), 0, rng)}, nil
}

// Close flushes straggling coalesced rounds.
func (a *Accommodation) Close() error {
	if a.flusher != nil {
		a.flusher.Close()
	}
	return nil
}

func (a *Accommodation) Summary(ctx context.Context) (*ScenarioSummary, error) {
	return streamsSummary(ctx, a.c, a.streams)
}

type accWorker struct {
	wl   *Accommodation
	pick *Chooser
}

func (w *accWorker) Issue(ctx context.Context) (int, error) {
	op := &w.wl.ops[w.pick.Next()]
	_, err := w.wl.flusher.Price(ctx, op.stream, op.features, op.reserve, op.valuation)
	if err != nil {
		return 0, err
	}
	return 1, nil
}
