package loadgen

import (
	"encoding/json"
	"fmt"
	"os"

	"datamarket/internal/histo"
)

// RunResult is one driver run in the JSON report.
type RunResult struct {
	Mode        string  `json:"mode"` // "open" | "closed"
	TargetRate  float64 `json:"target_rate,omitempty"`
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"duration_sec"`
	// Issued counts SDK operations; Units counts rounds/trades carried
	// (Units ≥ Issued for batch workloads).
	Issued  int64 `json:"issued"`
	Dropped int64 `json:"dropped,omitempty"`
	Units   int64 `json:"units"`
	// OpsPerSec and UnitsPerSec are over the full run including drain.
	OpsPerSec   float64 `json:"ops_per_sec"`
	UnitsPerSec float64 `json:"units_per_sec"`
	// ErrorCounts maps api error codes ("transport" for non-API
	// failures) to op counts; absent when the run was clean.
	ErrorCounts map[string]int64 `json:"error_counts,omitempty"`
	// LatencyMicros summarizes per-op latency in microseconds. Open-loop
	// latencies are scheduled-time-based (coordinated-omission-safe).
	LatencyMicros histo.Summary `json:"latency_us"`
}

// ResultOf renders an Outcome for the report.
func ResultOf(o *Outcome) RunResult {
	r := RunResult{
		Mode:          o.Mode,
		TargetRate:    o.TargetRate,
		Concurrency:   o.Concurrency,
		DurationSec:   round3(o.Elapsed.Seconds()),
		Issued:        o.Issued,
		Dropped:       o.Dropped,
		Units:         o.Units,
		LatencyMicros: o.Latency.Summarize(1e3),
	}
	if sec := o.Elapsed.Seconds(); sec > 0 {
		r.OpsPerSec = round3(float64(o.Issued) / sec)
		r.UnitsPerSec = round3(float64(o.Units) / sec)
	}
	if len(o.Errors) > 0 {
		r.ErrorCounts = o.Errors
	}
	return r
}

// ScenarioSummary is the server-side outcome of one scenario, pulled
// from stream stats and market ledgers after the drivers finish. Stream
// fields aggregate across the scenario's streams; market fields are
// present only for scenarios that trade.
type ScenarioSummary struct {
	Streams           int     `json:"streams,omitempty"`
	Rounds            int     `json:"rounds,omitempty"`
	CumulativeRegret  float64 `json:"cumulative_regret,omitempty"`
	CumulativeValue   float64 `json:"cumulative_value,omitempty"`
	CumulativeRevenue float64 `json:"cumulative_revenue,omitempty"`
	RegretRatio       float64 `json:"regret_ratio,omitempty"`

	Trades             int     `json:"trades,omitempty"`
	Sold               int     `json:"sold,omitempty"`
	MarketRevenue      float64 `json:"market_revenue,omitempty"`
	MarketCompensation float64 `json:"market_compensation,omitempty"`
	MarketProfit       float64 `json:"market_profit,omitempty"`
}

// merge folds another summary in (used by the mixed scenario).
func (s *ScenarioSummary) merge(o *ScenarioSummary) {
	if o == nil {
		return
	}
	s.Streams += o.Streams
	s.Rounds += o.Rounds
	s.CumulativeRegret += o.CumulativeRegret
	s.CumulativeValue += o.CumulativeValue
	s.CumulativeRevenue += o.CumulativeRevenue
	if s.CumulativeValue > 0 {
		s.RegretRatio = round3(s.CumulativeRegret / s.CumulativeValue)
	}
	s.Trades += o.Trades
	s.Sold += o.Sold
	s.MarketRevenue += o.MarketRevenue
	s.MarketCompensation += o.MarketCompensation
	s.MarketProfit += o.MarketProfit
}

// ScenarioReport is one scenario's section of the report.
type ScenarioReport struct {
	Scenario string           `json:"scenario"`
	Results  []RunResult      `json:"results"`
	Summary  *ScenarioSummary `json:"summary,omitempty"`
}

// Report is the BENCH_loadgen.json artifact.
type Report struct {
	Tool      string            `json:"tool"`
	GoVersion string            `json:"go_version"`
	CPUs      int               `json:"cpus"`
	Binary    bool              `json:"binary"`
	Scenarios []*ScenarioReport `json:"scenarios"`
}

// WriteFile emits the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("loadgen: encoding report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("loadgen: writing report: %w", err)
	}
	return nil
}

func round3(v float64) float64 { return float64(int64(v*1000+0.5)) / 1000 }
