package loadgen

import (
	"math"
	"sort"

	"datamarket/internal/randx"
)

// Chooser draws indices in [0, n) with configurable popularity skew:
// skew 0 is uniform; skew s > 0 is Zipf-like with P(rank r) ∝ 1/(r+1)^s
// (s ≈ 1 matches the stream/owner popularity of real ad logs and rating
// corpora). Draws are deterministic given the RNG. Not concurrency-safe;
// give each worker its own Chooser.
type Chooser struct {
	rng *randx.RNG
	n   int
	cdf []float64 // nil for uniform
}

// NewChooser builds a chooser over n keys. It panics if n <= 0 (a
// programming error in the workload, not load-dependent).
func NewChooser(n int, skew float64, rng *randx.RNG) *Chooser {
	if n <= 0 {
		panic("loadgen: Chooser over empty key space")
	}
	c := &Chooser{rng: rng, n: n}
	if skew <= 0 {
		return c
	}
	c.cdf = make([]float64, n)
	var total float64
	for r := 0; r < n; r++ {
		total += 1 / math.Pow(float64(r+1), skew)
		c.cdf[r] = total
	}
	for r := range c.cdf {
		c.cdf[r] /= total
	}
	return c
}

// Next draws one index.
func (c *Chooser) Next() int {
	if c.cdf == nil {
		return c.rng.Intn(c.n)
	}
	u := c.rng.Float64()
	i := sort.SearchFloat64s(c.cdf, u)
	if i >= c.n {
		i = c.n - 1
	}
	return i
}

// NextDistinct draws k distinct indices (k ≤ n), preserving the skew of
// the underlying distribution among the chosen keys.
func (c *Chooser) NextDistinct(k int, scratch map[int]struct{}) []int {
	if k > c.n {
		k = c.n
	}
	for key := range scratch {
		delete(scratch, key)
	}
	out := make([]int, 0, k)
	// Rejection-sample first; if the skew is so heavy that collisions
	// dominate, fall back to a linear sweep from a drawn start.
	for attempts := 0; len(out) < k && attempts < 10*k; attempts++ {
		i := c.Next()
		if _, dup := scratch[i]; !dup {
			scratch[i] = struct{}{}
			out = append(out, i)
		}
	}
	for i := c.Next(); len(out) < k; i = (i + 1) % c.n {
		if _, dup := scratch[i]; !dup {
			scratch[i] = struct{}{}
			out = append(out, i)
		}
	}
	return out
}
