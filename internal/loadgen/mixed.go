package loadgen

import (
	"context"
	"io"

	"datamarket/client"
	"datamarket/internal/randx"
)

// Mixed is the multi-family scenario: accommodation, impression, and
// ratings traffic interleaved from every worker, weighted toward the
// pricing families (40/40/20). It is the closest shape to a production
// broker hosting all three dataset families at once, and the scenario
// that exercises stream pricing, batch pricing, and market trades
// through one connection pool.
type Mixed struct {
	seed    uint64
	subs    []Workload
	weights []float64
}

// NewMixed builds the scenario over sub-scenarios namespaced under the
// mixed prefix.
func NewMixed(cfg Config) *Mixed {
	cfg = cfg.withDefaults("mixed")
	acc, imp, rat := cfg, cfg, cfg
	acc.Prefix = cfg.Prefix + "-acc"
	imp.Prefix = cfg.Prefix + "-imp"
	rat.Prefix = cfg.Prefix + "-rat"
	return &Mixed{
		seed:    cfg.Seed,
		subs:    []Workload{NewAccommodation(acc), NewImpression(imp), NewRatings(rat)},
		weights: []float64{0.4, 0.4, 0.2},
	}
}

func (m *Mixed) Name() string { return "mixed" }

func (m *Mixed) Setup(ctx context.Context, c *client.Client) error {
	for _, sub := range m.subs {
		if err := sub.Setup(ctx, c); err != nil {
			return err
		}
	}
	return nil
}

func (m *Mixed) NewWorker(id int) (Worker, error) {
	w := &mixedWorker{rng: randx.NewStream(m.seed+0x313d, uint64(id)), weights: m.weights}
	for _, sub := range m.subs {
		sw, err := sub.NewWorker(id)
		if err != nil {
			return nil, err
		}
		w.workers = append(w.workers, sw)
	}
	return w, nil
}

func (m *Mixed) Summary(ctx context.Context) (*ScenarioSummary, error) {
	total := &ScenarioSummary{}
	for _, sub := range m.subs {
		s, err := sub.Summary(ctx)
		if err != nil {
			return nil, err
		}
		total.merge(s)
	}
	return total, nil
}

// Close closes any sub-scenario holding a flusher.
func (m *Mixed) Close() error {
	var first error
	for _, sub := range m.subs {
		if cl, ok := sub.(io.Closer); ok {
			if err := cl.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

type mixedWorker struct {
	rng     *randx.RNG
	workers []Worker
	weights []float64
}

func (w *mixedWorker) Issue(ctx context.Context) (int, error) {
	u := w.rng.Float64()
	for i, wt := range w.weights {
		if u < wt || i == len(w.weights)-1 {
			return w.workers[i].Issue(ctx)
		}
		u -= wt
	}
	return 0, nil // unreachable
}
