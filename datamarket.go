// Package datamarket is a from-scratch Go implementation of "Online
// Pricing with Reserve Price Constraint for Personal Data Markets"
// (Niu, Zheng, Wu, Tang, Chen — ICDE 2020): an ellipsoid-based contextual
// dynamic pricing mechanism that lets a data broker post prices for
// sequential customized queries, subject to the reserve price implied by
// the privacy compensations owed to data owners.
//
// The facade re-exports the library's primary surface:
//
//   - the posted-price mechanisms (Algorithms 1/1*/2/2*, the 1-D interval
//     special case, the nonlinear g∘φ extensions, and the baselines);
//   - the data market substrate (owners, broker, consumers, differential
//     privacy compensation accounting);
//   - the regret bookkeeping used throughout the paper's evaluation.
//
// A minimal pricing loop:
//
//	m, _ := datamarket.NewMechanism(20, 2*math.Sqrt(20),
//	        datamarket.WithReserve(),
//	        datamarket.WithThreshold(datamarket.DefaultThreshold(20, 10000, 0)))
//	for _, q := range queries {
//	        quote, _ := m.PostPrice(q.Features, q.Reserve)
//	        if quote.Decision != datamarket.DecisionSkip {
//	                m.Observe(buyerAccepts(quote.Price))
//	        }
//	}
//
// The sub-packages under internal/ contain the full implementation; the
// examples/ directory shows the three applications of the paper's
// evaluation (noisy linear queries, accommodation rental, ad impressions)
// plus the loan scenario of §IV-B.
package datamarket

import (
	"datamarket/internal/linalg"
	"datamarket/internal/market"
	"datamarket/internal/pricing"
)

// Vector is the dense vector type used for features and weights.
type Vector = linalg.Vector

// Mechanism is the ellipsoid-based posted price mechanism (Algorithm 1/2).
type Mechanism = pricing.Mechanism

// IntervalMechanism is the one-dimensional special case (§II-C).
type IntervalMechanism = pricing.IntervalMechanism

// NonlinearMechanism prices under the generalized model v = g(φ(x)ᵀθ*).
type NonlinearMechanism = pricing.NonlinearMechanism

// Quote is the broker's per-round output.
type Quote = pricing.Quote

// Decision classifies a quote (skip, exploratory, conservative).
type Decision = pricing.Decision

// Decision values.
const (
	DecisionSkip         = pricing.DecisionSkip
	DecisionExploratory  = pricing.DecisionExploratory
	DecisionConservative = pricing.DecisionConservative
)

// Option configures a mechanism.
type Option = pricing.Option

// Model bundles the link g and feature map φ of a market value family.
type Model = pricing.Model

// Family identifies a hosted pricing family (linear, nonlinear, sgd).
type Family = pricing.Family

// Family values.
const (
	FamilyLinear    = pricing.FamilyLinear
	FamilyNonlinear = pricing.FamilyNonlinear
	FamilySGD       = pricing.FamilySGD
)

// FamilySpec is the family factory input: family, dimension, and model
// config.
type FamilySpec = pricing.FamilySpec

// ModelConfig is the serializable model description of a family.
type ModelConfig = pricing.ModelConfig

// KernelConfig is the serializable description of a landmark kernel.
type KernelConfig = pricing.KernelConfig

// FamilyPoster is the capability bundle every hosted family implements
// (posting, pending introspection, counters, envelope snapshots).
type FamilyPoster = pricing.FamilyPoster

// Envelope is the versioned, family-tagged snapshot wire format.
type Envelope = pricing.Envelope

// Kernel is the Mercer kernel interface of the kernelized model.
type Kernel = pricing.Kernel

// LandmarkMap is the fixed-budget realization of the kernelized model.
type LandmarkMap = pricing.LandmarkMap

// SGDPoster is the gradient-descent pricing comparator of §VI-B.
type SGDPoster = pricing.SGDPoster

// Poster is the interface satisfied by every pricing strategy.
type Poster = pricing.Poster

// RoundPoster is a Poster that can run one full post-respond-observe
// round atomically (SyncPoster implements it).
type RoundPoster = pricing.RoundPoster

// BatchRound is one round's input to batched pricing (features +
// reserve).
type BatchRound = pricing.BatchRound

// BatchOutcome is one round's result from batched pricing.
type BatchOutcome = pricing.BatchOutcome

// BatchRoundPoster is a RoundPoster that can price k rounds under one
// synchronization point (SyncPoster implements it).
type BatchRoundPoster = pricing.BatchRoundPoster

// SyncPoster makes any Poster safe for concurrent round-at-a-time use;
// brokerd hosts one per stream.
type SyncPoster = pricing.SyncPoster

// MechanismSnapshot is the durable state of a Mechanism, for crash
// recovery and migration.
type MechanismSnapshot = pricing.Snapshot

// Tracker accumulates regret series and Table I statistics.
type Tracker = pricing.Tracker

// TrackerState is a Tracker's serializable aggregate state; snapshot
// envelopes carry it so a restore resumes regret bookkeeping.
type TrackerState = pricing.TrackerState

// RestoreTracker rebuilds an aggregates-only Tracker from its state.
func RestoreTracker(s *TrackerState) (*Tracker, error) { return pricing.RestoreTracker(s) }

// Counters aggregates per-round mechanism bookkeeping.
type Counters = pricing.Counters

// Broker runs the end-to-end personal data market (Fig. 2).
type Broker = market.Broker

// BrokerConfig configures a Broker.
type BrokerConfig = market.Config

// Owner is a data owner in the market.
type Owner = market.Owner

// Query is a consumer's priced request.
type Query = market.Query

// Transaction is one ledger row of the market.
type Transaction = market.Transaction

// NewMechanism builds the ellipsoid mechanism for n-dimensional features
// with initial knowledge ‖θ*‖ ≤ radius.
func NewMechanism(n int, radius float64, opts ...Option) (*Mechanism, error) {
	return pricing.New(n, radius, opts...)
}

// NewIntervalMechanism builds the 1-D mechanism with θ* ∈ [lo, hi].
func NewIntervalMechanism(lo, hi float64, opts ...Option) (*IntervalMechanism, error) {
	return pricing.NewInterval(lo, hi, opts...)
}

// NewNonlinearMechanism builds a mechanism for the model v = g(φ(x)ᵀθ*).
func NewNonlinearMechanism(model Model, dim int, radius float64, opts ...Option) (*NonlinearMechanism, error) {
	return pricing.NewNonlinear(model, dim, radius, opts...)
}

// NewFamilyPoster builds a poster of the requested family; an empty
// family selects linear.
func NewFamilyPoster(spec FamilySpec) (FamilyPoster, error) { return pricing.NewFamilyPoster(spec) }

// Families lists the hosted family names.
func Families() []Family { return pricing.Families() }

// RestoreFamilyPoster rebuilds a poster of the envelope's family.
func RestoreFamilyPoster(env *Envelope) (FamilyPoster, error) { return pricing.RestoreEnvelope(env) }

// DecodeEnvelope parses a family-tagged snapshot envelope (legacy bare
// ellipsoid snapshots are upgraded to linear envelopes).
func DecodeEnvelope(data []byte) (*Envelope, error) { return pricing.DecodeEnvelope(data) }

// BuildModel instantiates a nonlinear model from its serializable config.
func BuildModel(cfg ModelConfig) (Model, error) { return pricing.BuildModel(cfg) }

// NewSGDPoster builds the SGD comparator for n-dimensional features.
func NewSGDPoster(n int, eta0, margin float64, useReserve bool) (*SGDPoster, error) {
	return pricing.NewSGD(n, eta0, margin, useReserve)
}

// NewLandmarkMap builds a landmark kernel feature map.
func NewLandmarkMap(k Kernel, landmarks []Vector) (*LandmarkMap, error) {
	return pricing.NewLandmarkMap(k, landmarks)
}

// KernelizedModel is v = φ(x)ᵀθ* over landmark kernel features.
func KernelizedModel(m *LandmarkMap) Model { return pricing.KernelizedModel(m) }

// NewBroker builds the end-to-end data market broker.
func NewBroker(cfg BrokerConfig) (*Broker, error) { return market.NewBroker(cfg) }

// NewTracker builds a regret tracker; keepRecords retains per-round rows.
func NewTracker(keepRecords bool) *Tracker { return pricing.NewTracker(keepRecords) }

// NewSyncPoster wraps a Poster for concurrent use.
func NewSyncPoster(inner Poster) *SyncPoster { return pricing.NewSync(inner) }

// RestoreMechanism rebuilds a Mechanism from a snapshot.
func RestoreMechanism(s *MechanismSnapshot) (*Mechanism, error) { return pricing.Restore(s) }

// DecodeMechanismSnapshot parses a snapshot encoded with Snapshot.Encode.
func DecodeMechanismSnapshot(data []byte) (*MechanismSnapshot, error) {
	return pricing.DecodeSnapshot(data)
}

// WithReserve enables the reserve price constraint (Algorithms 1 and 2).
func WithReserve() Option { return pricing.WithReserve() }

// WithUncertainty sets the robustness buffer δ (Algorithm 2).
func WithUncertainty(delta float64) Option { return pricing.WithUncertainty(delta) }

// WithThreshold overrides the exploration threshold ε.
func WithThreshold(eps float64) Option { return pricing.WithThreshold(eps) }

// DefaultThreshold returns the Theorem 1/Theorem 3 ε schedule.
func DefaultThreshold(n, horizon int, delta float64) float64 {
	return pricing.DefaultThreshold(n, horizon, delta)
}

// LinearModel is v = xᵀθ*.
func LinearModel() Model { return pricing.LinearModel() }

// LogLinearModel is log v = xᵀθ* (hedonic pricing).
func LogLinearModel() Model { return pricing.LogLinearModel() }

// LogLogModel is log v = Σ log(xᵢ)θᵢ*.
func LogLogModel() Model { return pricing.LogLogModel() }

// LogisticModel is v = sigmoid(xᵀθ*) (CTR pricing).
func LogisticModel() Model { return pricing.LogisticModel() }

// NewRiskAverse returns the always-post-reserve baseline of §V.
func NewRiskAverse() *pricing.RiskAverseBaseline { return pricing.NewRiskAverse() }

// SingleRoundRegret evaluates the paper's regret function (Eq. 1).
func SingleRoundRegret(value, reserve, posted float64) float64 {
	return pricing.SingleRoundRegret(value, reserve, posted)
}

// Sold reports whether a posted price sells against a market value.
func Sold(price, value float64) bool { return pricing.Sold(price, value) }
