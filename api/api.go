// Package api is the public wire contract of brokerd, the posted-price
// data-market broker. Every request and response body the server speaks
// is defined here — stream lifecycle and pricing, hosted markets, admin,
// and the uniform error envelope — so external programs can integrate
// against a typed, versioned surface instead of hand-rolled JSON.
//
// The contract is versioned: every route lives under PathPrefix
// ("/v1"), and GET /v1/version reports the server's APIVersion so
// clients can verify compatibility up front (the official Go client in
// package client does this automatically on first use). The JSON
// encoding of every type in this package is pinned by golden files
// under testdata/<APIVersion>/ — changing an encoding without bumping
// APIVersion fails the wire-compatibility tests and CI.
//
// Errors are machine-readable: every non-2xx response carries an
// ErrorResponse envelope {"error":{"code","message"}} whose Code is one
// of the stable ErrorCode constants, mapped from the server's domain
// errors (see errors.go).
package api

import (
	"datamarket/internal/pricing"
	"datamarket/internal/store"
)

// API version constants.
const (
	// APIVersion is the wire contract version; it appears in every route
	// path (PathPrefix) and in VersionResponse.API. It bumps only on
	// incompatible changes to the types in this package.
	APIVersion = "v1"
	// PathPrefix prefixes every versioned route.
	PathPrefix = "/" + APIVersion
)

// MaxBatchRounds is the most rounds (or trades) one batch request may
// carry; larger batches are rejected whole with 400. Part of the wire
// contract so clients (the SDK's Flusher in particular) can size their
// batches without tripping the limit.
const MaxBatchRounds = 4096

// Re-exported model-configuration and bookkeeping types. These cross the
// wire inside requests and responses; they are the same types the
// datamarket facade exports, so values move between the library and the
// API without conversion.
type (
	// ModelConfig is the serializable model description of a pricing
	// family (link/map/kernel/landmarks for "nonlinear", eta0/margin for
	// "sgd").
	ModelConfig = pricing.ModelConfig
	// KernelConfig is the serializable description of a landmark kernel.
	KernelConfig = pricing.KernelConfig
	// Counters aggregates per-round mechanism bookkeeping.
	Counters = pricing.Counters
	// Envelope is the family-tagged snapshot wire format served by
	// GET /v1/streams/{id}/snapshot and accepted by POST …/restore.
	Envelope = pricing.Envelope
	// StoreStats is the persistence backend's self-reported state inside
	// StoreStatusResponse.
	StoreStats = store.Stats
)

// CreateStreamRequest configures a new pricing stream: a family plus a
// model config, not a concrete mechanism. One stream hosts one poster —
// typically one per consumer segment or query family.
// (POST /v1/streams)
type CreateStreamRequest struct {
	// ID names the stream. Required, and unique across the registry.
	ID string `json:"id"`
	// Family selects the pricing family: "linear" (default), "nonlinear",
	// or "sgd".
	Family string `json:"family,omitempty"`
	// Dim is the input feature dimension n. Required, ≥ 1.
	Dim int `json:"dim"`
	// Radius bounds ‖θ*‖ for the initial knowledge ball (ellipsoid
	// families). Defaults to 2√(mapped dim), the normalization used
	// throughout the paper's experiments.
	Radius float64 `json:"radius,omitempty"`
	// Reserve enables the reserve price constraint (all families).
	Reserve bool `json:"reserve,omitempty"`
	// Delta is the uncertainty buffer δ ≥ 0 (Algorithm 2).
	Delta float64 `json:"delta,omitempty"`
	// Threshold overrides the exploration threshold ε. When 0 and
	// Horizon > 0, the regret-optimal DefaultThreshold schedule is used;
	// when both are 0, the mechanism's horizon-free fallback applies.
	Threshold float64 `json:"threshold,omitempty"`
	// Horizon is the expected number of rounds T for the default ε.
	Horizon int `json:"horizon,omitempty"`
	// Model carries the family-specific model config: link/map/kernel/
	// landmarks for "nonlinear", eta0/margin for "sgd".
	Model *ModelConfig `json:"model,omitempty"`
}

// StreamInfo describes a hosted stream.
type StreamInfo struct {
	ID     string `json:"id"`
	Family string `json:"family"`
	Dim    int    `json:"dim"`
}

// ListStreamsResponse enumerates the hosted streams.
// (GET /v1/streams)
type ListStreamsResponse struct {
	Streams []StreamInfo `json:"streams"`
}

// PriceRequest drives pricing for one query. With Valuation set, the
// server runs one full round atomically: it posts the price, accepts iff
// price ≤ valuation (the buyer-valuation callback), and feeds the result
// back to the mechanism. Without Valuation, use the two-phase
// /quote + /observe pair instead. (POST /v1/streams/{id}/price)
type PriceRequest struct {
	Features  []float64 `json:"features"`
	Reserve   float64   `json:"reserve,omitempty"`
	Valuation *float64  `json:"valuation,omitempty"`
}

// QuoteRequest opens a round without resolving it: the caller must report
// the buyer's decision via /observe before the next quote on the stream.
// (POST /v1/streams/{id}/quote)
type QuoteRequest struct {
	Features []float64 `json:"features"`
	Reserve  float64   `json:"reserve,omitempty"`
}

// ObserveRequest closes the round opened by the last quote.
// (POST /v1/streams/{id}/observe)
type ObserveRequest struct {
	Accepted bool `json:"accepted"`
}

// ObserveResponse acknowledges the feedback that closed the round.
type ObserveResponse struct {
	Observed bool `json:"observed"`
}

// PriceResponse reports the broker's quote for one round. Accepted is
// set only when the request carried a valuation and the round was not
// skipped.
type PriceResponse struct {
	Price          float64 `json:"price"`
	Decision       string  `json:"decision"`
	Lower          float64 `json:"lower"`
	Upper          float64 `json:"upper"`
	ReserveBinding bool    `json:"reserve_binding,omitempty"`
	Accepted       *bool   `json:"accepted,omitempty"`
}

// BatchPriceRound is one round inside a batched pricing request. The
// fields mirror PriceRequest; Valuation is required — batching exists
// for the high-throughput valuation-callback path, two-phase rounds
// cannot batch (each one blocks on external feedback).
type BatchPriceRound struct {
	Features  []float64 `json:"features"`
	Reserve   float64   `json:"reserve,omitempty"`
	Valuation *float64  `json:"valuation,omitempty"`
}

// BatchPriceRequest prices k rounds on one stream with a single JSON
// decode and a single stream-lock acquisition (POST
// /v1/streams/{id}/price/batch). Rounds run back to back in order.
type BatchPriceRequest struct {
	Rounds []BatchPriceRound `json:"rounds"`
}

// MultiBatchRound is one round inside a multi-stream batched pricing
// request: a BatchPriceRound plus the target stream.
type MultiBatchRound struct {
	StreamID  string    `json:"stream_id"`
	Features  []float64 `json:"features"`
	Reserve   float64   `json:"reserve,omitempty"`
	Valuation *float64  `json:"valuation,omitempty"`
}

// MultiBatchPriceRequest prices rounds across many streams in one
// request (POST /v1/price/batch). Rounds are grouped by stream — order
// is preserved within a stream, not across streams — and fanned out
// over a bounded worker pool, one shard's streams per worker at a time.
type MultiBatchPriceRequest struct {
	Rounds []MultiBatchRound `json:"rounds"`
}

// BatchRoundResult reports one round of a batch: the quote fields on
// success, or Error. Results align index-for-index with request rounds.
type BatchRoundResult struct {
	PriceResponse
	Error string `json:"error,omitempty"`
}

// BatchPriceResponse carries the per-round results of either batch
// endpoint.
type BatchPriceResponse struct {
	Results []BatchRoundResult `json:"results"`
}

// RegretStats summarizes regret bookkeeping: for a stream, the rounds
// priced through the one-shot /price endpoint (where the buyer's
// valuation is known to the server); for a market, every trade.
type RegretStats struct {
	Rounds            int     `json:"rounds"`
	CumulativeRegret  float64 `json:"cumulative_regret"`
	CumulativeValue   float64 `json:"cumulative_value"`
	CumulativeRevenue float64 `json:"cumulative_revenue"`
	RegretRatio       float64 `json:"regret_ratio"`
}

// StatsResponse surfaces a stream's mechanism counters and regret
// bookkeeping. HasCounters reports whether the poster keeps counters at
// all; when false the Counters block is meaningless zeros rather than a
// genuinely idle stream. (GET /v1/streams/{id}/stats)
type StatsResponse struct {
	ID          string      `json:"id"`
	Family      string      `json:"family"`
	Dim         int         `json:"dim"`
	Counters    Counters    `json:"counters"`
	HasCounters bool        `json:"has_counters"`
	Regret      RegretStats `json:"regret"`
}

// HealthResponse is the liveness probe body. (GET /healthz)
type HealthResponse struct {
	Status  string `json:"status"`
	Streams int    `json:"streams"`
	Markets int    `json:"markets"`
}
