package binary

import (
	"encoding/binary"
	"fmt"
	"math"

	"datamarket/api"
)

// The Append* encoders append one complete frame to buf and return the
// extended slice, in the append(dst, src...) idiom: passing a buffer
// with spare capacity (e.g. one drawn from a sync.Pool) makes the
// steady-state encode allocation-free. Encoders for request types cannot
// fail; response encoders return an error only for decision strings the
// enum does not cover, which a conforming server never produces.

// Low-level little-endian appenders.

func appendU16(buf []byte, v uint16) []byte {
	return binary.LittleEndian.AppendUint16(buf, v)
}

func appendU32(buf []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(buf, v)
}

func appendU64(buf []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, v)
}

func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func appendF64s(buf []byte, vs []float64) []byte {
	for _, v := range vs {
		buf = appendF64(buf, v)
	}
	return buf
}

// appendHeader opens a frame: magic, version, kind, zero reserved bits.
func appendHeader(buf []byte, kind Kind) []byte {
	buf = appendU32(buf, Magic)
	buf = append(buf, Version, uint8(kind))
	return appendU16(buf, 0)
}

// Valuation flag bits shared by the request payloads.
const flagHasValuation = 1 << 0

// appendValuation writes the presence flag and, when set, the value.
func appendValuation(buf []byte, v *float64) []byte {
	if v == nil {
		return append(buf, 0)
	}
	buf = append(buf, flagHasValuation)
	return appendF64(buf, *v)
}

// AppendPriceRequest encodes one single-round pricing request
// (KindPriceRequest). Payload:
//
//	flags     uint8   bit0: valuation present
//	dim       uint32
//	reserve   float64
//	valuation float64 (present iff flags bit0)
//	features  dim × float64
func AppendPriceRequest(buf []byte, req *api.PriceRequest) []byte {
	buf = appendHeader(buf, KindPriceRequest)
	var flags uint8
	if req.Valuation != nil {
		flags |= flagHasValuation
	}
	buf = append(buf, flags)
	buf = appendU32(buf, uint32(len(req.Features)))
	buf = appendF64(buf, req.Reserve)
	if req.Valuation != nil {
		buf = appendF64(buf, *req.Valuation)
	}
	return appendF64s(buf, req.Features)
}

// AppendPriceBatchRequest encodes a per-stream price batch
// (KindPriceBatchRequest) in the columnar layout. All rounds of a
// per-stream batch share the stream's dimension, so the frame carries
// one dims header and packed columns — a decoder validates the whole
// frame with one bounds check. Payload:
//
//	k         uint32            rounds
//	dim       uint32            features per round
//	features  k × dim × float64 round-major
//	reserves  k × float64
//	valflags  k × uint8         bit0: valuation present
//	vals      k × float64       slot ignored when bit0 clear
//
// Rounds whose feature count differs from rounds[0] cannot be expressed
// in this frame — encoding such a (server-invalid) batch returns an
// error; send it as JSON instead, where the server rejects it per-round.
// The SDK probes CanEncodePriceBatch up front to pick the codec without
// an error path.
func AppendPriceBatchRequest(buf []byte, req *api.BatchPriceRequest) ([]byte, error) {
	if !CanEncodePriceBatch(req.Rounds) {
		return buf, fmt.Errorf("binary: ragged price batch (rounds differ in feature count) is not expressible in the columnar frame")
	}
	buf = appendHeader(buf, KindPriceBatchRequest)
	dim := 0
	if len(req.Rounds) > 0 {
		dim = len(req.Rounds[0].Features)
	}
	buf = appendU32(buf, uint32(len(req.Rounds)))
	buf = appendU32(buf, uint32(dim))
	for i := range req.Rounds {
		buf = appendF64s(buf, req.Rounds[i].Features)
	}
	for i := range req.Rounds {
		buf = appendF64(buf, req.Rounds[i].Reserve)
	}
	for i := range req.Rounds {
		if req.Rounds[i].Valuation != nil {
			buf = append(buf, flagHasValuation)
		} else {
			buf = append(buf, 0)
		}
	}
	for i := range req.Rounds {
		if v := req.Rounds[i].Valuation; v != nil {
			buf = appendF64(buf, *v)
		} else {
			buf = appendF64(buf, 0)
		}
	}
	return buf, nil
}

// CanEncodePriceBatch reports whether the batch is expressible in the
// columnar frame: every round carries the same feature count. The SDK
// probes this before choosing the codec so ragged (invalid) batches
// still reach the server and fail with the same per-round errors JSON
// produces.
func CanEncodePriceBatch(rounds []api.BatchPriceRound) bool {
	if len(rounds) == 0 {
		return true
	}
	dim := len(rounds[0].Features)
	for i := 1; i < len(rounds); i++ {
		if len(rounds[i].Features) != dim {
			return false
		}
	}
	return true
}

// AppendMultiBatchRequest encodes a multi-stream price batch
// (KindMultiBatchRequest). Stream IDs are deduplicated into a table so a
// batch with k rounds over g streams carries each ID once. Payload:
//
//	n        uint32   stream-ID table entries
//	entries  n × { len uint16, bytes }
//	k        uint32   rounds
//	rounds   k × { id uint32, dim uint32, flags uint8,
//	               reserve float64, valuation float64 (iff flags bit0),
//	               features dim × float64 }
//
// Unlike the per-stream frame this layout is row-major: rounds of a
// multi-stream batch have per-stream dimensions, so there is no shared
// dims header to hoist. Building the ID table allocates (one map plus
// the table itself), amortized across the batch. A stream ID longer than
// the uint16 length prefix is an encode error (the server caps IDs far
// below this).
func AppendMultiBatchRequest(buf []byte, req *api.MultiBatchPriceRequest) ([]byte, error) {
	if !CanEncodeMultiBatch(req.Rounds) {
		return buf, fmt.Errorf("binary: stream ID exceeds the frame's %d-byte limit", math.MaxUint16)
	}
	buf = appendHeader(buf, KindMultiBatchRequest)
	table := make(map[string]uint32, 8)
	order := make([]string, 0, 8)
	for i := range req.Rounds {
		id := req.Rounds[i].StreamID
		if _, ok := table[id]; !ok {
			table[id] = uint32(len(order))
			order = append(order, id)
		}
	}
	buf = appendU32(buf, uint32(len(order)))
	for _, id := range order {
		buf = appendU16(buf, uint16(len(id)))
		buf = append(buf, id...)
	}
	buf = appendU32(buf, uint32(len(req.Rounds)))
	for i := range req.Rounds {
		rd := &req.Rounds[i]
		buf = appendU32(buf, table[rd.StreamID])
		buf = appendU32(buf, uint32(len(rd.Features)))
		buf = appendValuationFlag(buf, rd.Valuation)
		buf = appendF64(buf, rd.Reserve)
		if rd.Valuation != nil {
			buf = appendF64(buf, *rd.Valuation)
		}
		buf = appendF64s(buf, rd.Features)
	}
	return buf, nil
}

// appendValuationFlag writes just the presence flag byte.
func appendValuationFlag(buf []byte, v *float64) []byte {
	if v != nil {
		return append(buf, flagHasValuation)
	}
	return append(buf, 0)
}

// CanEncodeMultiBatch reports whether the batch is expressible in the
// frame: every stream ID fits the uint16 length prefix. (The server caps
// IDs well below this; the probe exists so a pathological caller falls
// back to JSON rather than truncating.)
func CanEncodeMultiBatch(rounds []api.MultiBatchRound) bool {
	for i := range rounds {
		if len(rounds[i].StreamID) > math.MaxUint16 {
			return false
		}
	}
	return true
}

// AppendTradeBatchRequest encodes a market trade batch
// (KindTradeBatchRequest) in the columnar layout. Weight vectors are
// concatenated into one packed column with a per-trade length column, so
// ragged (invalid) weight counts are expressible and fail server-side
// with the same per-trade errors as JSON. Payload:
//
//	k        uint32        trades
//	wlens    k × uint32    weights per trade
//	noise    k × float64   noise variances
//	vals     k × float64   valuations
//	weights  Σwlens × float64 concatenated
func AppendTradeBatchRequest(buf []byte, req *api.TradeBatchRequest) []byte {
	buf = appendHeader(buf, KindTradeBatchRequest)
	buf = appendU32(buf, uint32(len(req.Trades)))
	for i := range req.Trades {
		buf = appendU32(buf, uint32(len(req.Trades[i].Weights)))
	}
	for i := range req.Trades {
		buf = appendF64(buf, req.Trades[i].NoiseVariance)
	}
	for i := range req.Trades {
		buf = appendF64(buf, req.Trades[i].Valuation)
	}
	for i := range req.Trades {
		buf = appendF64s(buf, req.Trades[i].Weights)
	}
	return buf
}

// Response flag bits.
const (
	flagReserveBinding = 1 << 0
	flagHasAccepted    = 1 << 1
	flagAccepted       = 1 << 2
	flagHasError       = 1 << 3
	flagSold           = 1 << 0 // trade results
	flagTradeError     = 1 << 1 // trade results
)

// priceRespFlags packs one PriceResponse's booleans.
func priceRespFlags(r *api.PriceResponse) uint8 {
	var flags uint8
	if r.ReserveBinding {
		flags |= flagReserveBinding
	}
	if r.Accepted != nil {
		flags |= flagHasAccepted
		if *r.Accepted {
			flags |= flagAccepted
		}
	}
	return flags
}

// AppendPriceResponse encodes one quote (KindPriceResponse). Payload:
//
//	flags    uint8   bit0: reserve binding, bit1: accepted present, bit2: accepted
//	decision uint8   0 none, 1 skip, 2 exploratory, 3 conservative
//	price    float64
//	lower    float64
//	upper    float64
func AppendPriceResponse(buf []byte, resp *api.PriceResponse) ([]byte, error) {
	dec, err := encodeDecision(resp.Decision)
	if err != nil {
		return buf, err
	}
	buf = appendHeader(buf, KindPriceResponse)
	buf = append(buf, priceRespFlags(resp), dec)
	buf = appendF64(buf, resp.Price)
	buf = appendF64(buf, resp.Lower)
	return appendF64(buf, resp.Upper), nil
}

// AppendBatchResponse encodes the per-round results of a price batch
// (KindBatchResponse) in the columnar layout. Payload:
//
//	k         uint32
//	prices    k × float64
//	lowers    k × float64
//	uppers    k × float64
//	flags     k × uint8   bit0 reserve binding, bit1 accepted present,
//	                      bit2 accepted, bit3 error present
//	decisions k × uint8
//	errors    one { len uint32, bytes } per set bit3, in round order
func AppendBatchResponse(buf []byte, resp *api.BatchPriceResponse) ([]byte, error) {
	buf = appendHeader(buf, KindBatchResponse)
	buf = appendU32(buf, uint32(len(resp.Results)))
	for i := range resp.Results {
		buf = appendF64(buf, resp.Results[i].Price)
	}
	for i := range resp.Results {
		buf = appendF64(buf, resp.Results[i].Lower)
	}
	for i := range resp.Results {
		buf = appendF64(buf, resp.Results[i].Upper)
	}
	for i := range resp.Results {
		r := &resp.Results[i]
		flags := priceRespFlags(&r.PriceResponse)
		if r.Error != "" {
			flags |= flagHasError
		}
		buf = append(buf, flags)
	}
	for i := range resp.Results {
		dec, err := encodeDecision(resp.Results[i].Decision)
		if err != nil {
			return buf, fmt.Errorf("result %d: %w", i, err)
		}
		buf = append(buf, dec)
	}
	for i := range resp.Results {
		if e := resp.Results[i].Error; e != "" {
			buf = appendU32(buf, uint32(len(e)))
			buf = append(buf, e...)
		}
	}
	return buf, nil
}

// AppendTradeBatchResponse encodes the per-trade results of a trade
// batch (KindTradeBatchResponse) in the columnar layout. Payload:
//
//	k         uint32
//	rounds    k × uint64
//	reserves, posteds, revenues, compensations,
//	profits, answers, regrets   7 columns, each k × float64
//	flags     k × uint8   bit0 sold, bit1 error present
//	decisions k × uint8
//	errors    one { len uint32, bytes } per set bit1, in trade order
func AppendTradeBatchResponse(buf []byte, resp *api.TradeBatchResponse) ([]byte, error) {
	buf = appendHeader(buf, KindTradeBatchResponse)
	buf = appendU32(buf, uint32(len(resp.Results)))
	for i := range resp.Results {
		buf = appendU64(buf, uint64(resp.Results[i].Round))
	}
	for _, col := range [7]func(*api.TradeResult) float64{
		func(t *api.TradeResult) float64 { return t.Reserve },
		func(t *api.TradeResult) float64 { return t.Posted },
		func(t *api.TradeResult) float64 { return t.Revenue },
		func(t *api.TradeResult) float64 { return t.Compensation },
		func(t *api.TradeResult) float64 { return t.Profit },
		func(t *api.TradeResult) float64 { return t.Answer },
		func(t *api.TradeResult) float64 { return t.Regret },
	} {
		for i := range resp.Results {
			buf = appendF64(buf, col(&resp.Results[i].TradeResult))
		}
	}
	for i := range resp.Results {
		r := &resp.Results[i]
		var flags uint8
		if r.Sold {
			flags |= flagSold
		}
		if r.Error != "" {
			flags |= flagTradeError
		}
		buf = append(buf, flags)
	}
	for i := range resp.Results {
		dec, err := encodeDecision(resp.Results[i].Decision)
		if err != nil {
			return buf, fmt.Errorf("result %d: %w", i, err)
		}
		buf = append(buf, dec)
	}
	for i := range resp.Results {
		if e := resp.Results[i].Error; e != "" {
			buf = appendU32(buf, uint32(len(e)))
			buf = append(buf, e...)
		}
	}
	return buf, nil
}

// Append encodes any codec-registered value (a pointer to one of the
// WireTypes entries) by dispatching on its type — the generic entry
// point the SDK's transport uses. It returns an error for types the
// codec does not carry.
func Append(buf []byte, v any) ([]byte, error) {
	switch m := v.(type) {
	case *api.PriceRequest:
		return AppendPriceRequest(buf, m), nil
	case *api.BatchPriceRequest:
		return AppendPriceBatchRequest(buf, m)
	case *api.MultiBatchPriceRequest:
		return AppendMultiBatchRequest(buf, m)
	case *api.TradeBatchRequest:
		return AppendTradeBatchRequest(buf, m), nil
	case *api.PriceResponse:
		return AppendPriceResponse(buf, m)
	case *api.BatchPriceResponse:
		return AppendBatchResponse(buf, m)
	case *api.TradeBatchResponse:
		return AppendTradeBatchResponse(buf, m)
	}
	return buf, fmt.Errorf("binary: type %T is not a codec wire type", v)
}
