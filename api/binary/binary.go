// Package binary is the compact wire codec for brokerd's hot pricing
// endpoints. It encodes the high-rate request/response types of package
// api — single-round pricing, per-stream and multi-stream price batches,
// and trade batches — as versioned, length-framed little-endian records
// with a columnar batch layout: one magic+version+dims header, then
// packed float64 feature columns and a packed result block, so a k-round
// batch decodes with one bounds check and one copy into preallocated
// per-stream scratch. No reflection is involved and the steady-state
// encode/decode path performs zero allocations when the caller reuses a
// Decoder and append buffers (pinned by AllocsPerRun tests).
//
// The codec is negotiated on the existing HTTP mux, not on a separate
// port: a request whose Content-Type is ContentType carries a binary
// body, and a request whose Accept header includes ContentType asks for
// a binary response body. JSON remains the default and the two encodings
// are equivalent in meaning — the cross-codec tests replay the golden
// JSON fixtures through both codecs and require identical values. Error
// responses are always the JSON error envelope regardless of Accept, so
// a client's error path never depends on the negotiation outcome.
//
// Servers advertise support with the ProtoHeader response header
// (stamped on every response); the SDK's WithBinary option switches the
// hot calls to this codec once it has seen the header and falls back to
// JSON against servers that predate it.
//
// # Frame layout
//
// Every message is one frame:
//
//	offset  size  field
//	0       4     magic   "DMB1" (0x44 0x4D 0x42 0x31)
//	4       1     version codec version (Version = 1)
//	5       1     kind    message kind (Kind* constants)
//	6       2     reserved, must be zero
//	8       …     payload (kind-specific, little-endian)
//
// Multi-byte integers and float64 bit patterns are little-endian. The
// payload layouts are documented on the Append* encoders. Decoders
// reject truncated or oversized frames, unknown versions and kinds,
// nonzero reserved bits, batch sizes beyond api.MaxBatchRounds, and
// non-finite floats (NaN/±Inf — values JSON cannot carry either, so the
// two codecs accept exactly the same set of messages).
package binary

import (
	"errors"
	"fmt"

	"datamarket/api"
)

// Negotiation constants.
const (
	// ContentType marks a binary-encoded HTTP body, on requests
	// (Content-Type) and responses (Accept / Content-Type).
	ContentType = "application/x-datamarket-binary"
	// ProtoHeader is the response header a binary-capable server stamps
	// on every response; its value is the highest codec version spoken.
	ProtoHeader = "X-Binary-Protocol"
)

// Frame constants.
const (
	// Magic opens every frame: "DMB1" read as a little-endian uint32.
	Magic uint32 = 0x31424D44
	// Version is the codec version written and accepted by this package.
	Version uint8 = 1
	// headerSize is the fixed frame header length.
	headerSize = 8
)

// Kind identifies the message a frame carries. Request kinds have the
// high bit clear, response kinds have it set.
type Kind uint8

// Frame kinds.
const (
	KindPriceRequest       Kind = 0x01
	KindPriceBatchRequest  Kind = 0x02
	KindMultiBatchRequest  Kind = 0x03
	KindTradeBatchRequest  Kind = 0x04
	KindPriceResponse      Kind = 0x81
	KindBatchResponse      Kind = 0x82
	KindTradeBatchResponse Kind = 0x84
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindPriceRequest:
		return "price_request"
	case KindPriceBatchRequest:
		return "batch_price_request"
	case KindMultiBatchRequest:
		return "multi_batch_price_request"
	case KindTradeBatchRequest:
		return "trade_batch_request"
	case KindPriceResponse:
		return "price_response"
	case KindBatchResponse:
		return "batch_price_response"
	case KindTradeBatchResponse:
		return "trade_batch_response"
	}
	return fmt.Sprintf("kind(0x%02x)", uint8(k))
}

// WireTypes enumerates every api type the binary codec carries, keyed by
// frame kind. It is the codec's registration surface: the wirecontract
// analyzer requires a golden binary fixture under
// api/testdata/<APIVersion>/bin/ for each entry (mirroring the JSON
// fixture rule), and the fixture tests iterate it so a kind cannot be
// added without pinning its encoding.
var WireTypes = map[Kind]any{
	KindPriceRequest:       api.PriceRequest{},
	KindPriceBatchRequest:  api.BatchPriceRequest{},
	KindMultiBatchRequest:  api.MultiBatchPriceRequest{},
	KindTradeBatchRequest:  api.TradeBatchRequest{},
	KindPriceResponse:      api.PriceResponse{},
	KindBatchResponse:      api.BatchPriceResponse{},
	KindTradeBatchResponse: api.TradeBatchResponse{},
}

// MaxDim caps the per-round feature (and per-trade weight) count a
// decoder accepts. It is a frame-sanity bound, not the serving contract:
// the server enforces its own tighter dimension cap after decoding.
const MaxDim = 1 << 16

// ErrFrame is wrapped by every decode failure: truncated or oversized
// payloads, bad magic, unknown versions or kinds, out-of-range counts,
// and non-finite floats. HTTP servers map it to the invalid_request
// error envelope, exactly like a JSON syntax error.
var ErrFrame = errors.New("binary: malformed frame")

// frameErrorf builds an ErrFrame-wrapped decode error.
func frameErrorf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrFrame, fmt.Sprintf(format, args...))
}

// Decision enum values. The wire carries decisions as one byte; decoding
// maps them back onto interned strings so a batch decode allocates
// nothing per round.
const (
	decisionNone         uint8 = 0 // zero PriceResponse (e.g. an errored batch slot)
	decisionSkip         uint8 = 1
	decisionExploratory  uint8 = 2
	decisionConservative uint8 = 3
)

// Interned decision strings (the values pricing.Decision.String()
// produces; the codec does not import pricing to stay a leaf under api).
const (
	decisionSkipStr         = "skip"
	decisionExploratoryStr  = "exploratory"
	decisionConservativeStr = "conservative"
)

// encodeDecision maps a wire decision string onto its enum byte.
func encodeDecision(s string) (uint8, error) {
	switch s {
	case "":
		return decisionNone, nil
	case decisionSkipStr:
		return decisionSkip, nil
	case decisionExploratoryStr:
		return decisionExploratory, nil
	case decisionConservativeStr:
		return decisionConservative, nil
	}
	return 0, fmt.Errorf("binary: unknown decision %q", s)
}

// decodeDecision maps an enum byte back onto its interned string.
func decodeDecision(b uint8) (string, error) {
	switch b {
	case decisionNone:
		return "", nil
	case decisionSkip:
		return decisionSkipStr, nil
	case decisionExploratory:
		return decisionExploratoryStr, nil
	case decisionConservative:
		return decisionConservativeStr, nil
	}
	return "", frameErrorf("unknown decision byte 0x%02x", b)
}
