//go:build !race

package binary

import (
	"testing"

	"datamarket/api"
)

// These tests guard the codec's zero-allocation steady state: with a
// reused append buffer and a warmed Decoder, encoding and decoding the
// hot batch frames allocates nothing per call. (Skipped under -race,
// whose instrumentation perturbs allocation counts.)

// batchOf builds a k-round single-stream batch at the given dimension.
func batchOf(k, dim int) *api.BatchPriceRequest {
	rounds := make([]api.BatchPriceRound, k)
	for i := range rounds {
		f := make([]float64, dim)
		for j := range f {
			f[j] = float64(i*dim+j) / 16
		}
		v := float64(i)
		rounds[i] = api.BatchPriceRound{Features: f, Reserve: 0.25, Valuation: &v}
	}
	return &api.BatchPriceRequest{Rounds: rounds}
}

func TestEncodeBatchZeroAllocs(t *testing.T) {
	req := batchOf(64, 16)
	buf, err := Append(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if buf, err = Append(buf[:0], req); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state batch encode allocates %.1f times per call, want 0", allocs)
	}
}

func TestDecodeBatchZeroAllocs(t *testing.T) {
	frame, err := Append(nil, batchOf(64, 16))
	if err != nil {
		t.Fatal(err)
	}
	var d Decoder
	if _, err := d.PriceBatch(frame); err != nil {
		t.Fatal(err) // warm the scratch
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := d.PriceBatch(frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state batch decode allocates %.1f times per call, want 0", allocs)
	}
}

func TestDecodeMultiBatchZeroAllocs(t *testing.T) {
	// A Flusher-shaped workload: the same streams every batch. Stream-ID
	// table entries are reused across decodes, so the steady state is
	// allocation-free here too.
	rounds := make([]api.MultiBatchRound, 32)
	for i := range rounds {
		v := float64(i)
		rounds[i] = api.MultiBatchRound{
			StreamID: []string{"alpha", "beta", "gamma"}[i%3],
			Features: []float64{1, 2, 3, 4}, Reserve: 0.5, Valuation: &v,
		}
	}
	frame, err := Append(nil, &api.MultiBatchPriceRequest{Rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	var d Decoder
	if _, err := d.MultiBatch(frame); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := d.MultiBatch(frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state multi-batch decode allocates %.1f times per call, want 0", allocs)
	}
}

func TestEncodeBatchResponseZeroAllocs(t *testing.T) {
	results := make([]api.BatchRoundResult, 64)
	acc := true
	for i := range results {
		results[i] = api.BatchRoundResult{PriceResponse: api.PriceResponse{
			Price: float64(i), Decision: "exploratory", Lower: 0, Upper: float64(i) + 1,
			Accepted: &acc,
		}}
	}
	resp := &api.BatchPriceResponse{Results: results}
	buf, err := Append(nil, resp)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if buf, err = Append(buf[:0], resp); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state batch response encode allocates %.1f times per call, want 0", allocs)
	}
}

func TestDecodeBatchResponseZeroAllocs(t *testing.T) {
	results := make([]api.BatchRoundResult, 64)
	for i := range results {
		results[i] = api.BatchRoundResult{PriceResponse: api.PriceResponse{
			Price: float64(i), Decision: "conservative", Upper: float64(i) + 1,
		}}
	}
	frame, err := Append(nil, &api.BatchPriceResponse{Results: results})
	if err != nil {
		t.Fatal(err)
	}
	var d Decoder
	if _, err := d.BatchResponse(frame); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := d.BatchResponse(frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state batch response decode allocates %.1f times per call, want 0", allocs)
	}
}

func TestSinglePriceCodecZeroAllocs(t *testing.T) {
	v := 2.5
	req := &api.PriceRequest{Features: []float64{1, 2, 3, 4}, Reserve: 0.5, Valuation: &v}
	buf, err := Append(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	var d Decoder
	if _, err := d.PriceRequest(buf); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		buf, _ = Append(buf[:0], req)
		if _, err := d.PriceRequest(buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state single-round encode+decode allocates %.1f times per call, want 0", allocs)
	}
}
