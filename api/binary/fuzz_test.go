package binary

import (
	"errors"
	"reflect"
	"testing"
)

// FuzzDecodePriceBatch throws arbitrary bytes at the decoder — the
// decode entry points are kind-dispatched off one frame header, so a
// single fuzz target covers the whole decode surface (CI runs it with
// -fuzztime; see the fuzz step in ci.yml). The invariants:
//
//   - no input may panic the decoder (truncated, oversized, or
//     NaN-smuggling frames included);
//   - every rejection wraps ErrFrame, which the server maps to the
//     invalid_request envelope;
//   - anything accepted must survive re-encode → re-decode unchanged
//     (an accepted frame need not be byte-canonical — a multi-batch
//     stream table may carry unused entries — but its meaning must be).
func FuzzDecodePriceBatch(f *testing.F) {
	// Seed with one valid frame per kind, plus mutations the unit tests
	// care about, so the fuzzer starts at the interesting boundaries.
	for _, msg := range sampleMessages() {
		frame, err := Append(nil, msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		f.Add(frame[:len(frame)-1])
		f.Add(append(append([]byte(nil), frame...), 0))
	}
	f.Add([]byte{})
	f.Add([]byte{0x44, 0x4D, 0x42, 0x31, 1, 2, 0, 0})

	decoders := map[Kind]func(d *Decoder, data []byte) (any, error){
		KindPriceRequest:      func(d *Decoder, b []byte) (any, error) { return d.PriceRequest(b) },
		KindPriceBatchRequest: func(d *Decoder, b []byte) (any, error) { return d.PriceBatch(b) },
		KindMultiBatchRequest: func(d *Decoder, b []byte) (any, error) { return d.MultiBatch(b) },
		KindTradeBatchRequest: func(d *Decoder, b []byte) (any, error) { return d.TradeBatch(b) },
		KindPriceResponse:     func(d *Decoder, b []byte) (any, error) { return d.PriceResponse(b) },
		KindBatchResponse:     func(d *Decoder, b []byte) (any, error) { return d.BatchResponse(b) },
		KindTradeBatchResponse: func(d *Decoder, b []byte) (any, error) {
			return d.TradeBatchResponse(b)
		},
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		for kind, decode := range decoders {
			var d Decoder
			msg, err := decode(&d, data)
			if err != nil {
				if !errors.Is(err, ErrFrame) {
					t.Fatalf("%s rejection does not wrap ErrFrame: %v", kind, err)
				}
				continue
			}
			re, err := Append(nil, msg)
			if err != nil {
				t.Fatalf("%s: accepted frame does not re-encode: %v", kind, err)
			}
			back, err := decode(new(Decoder), re)
			if err != nil {
				t.Fatalf("%s: re-encoded frame does not decode: %v", kind, err)
			}
			if !reflect.DeepEqual(back, msg) {
				t.Fatalf("%s: meaning changed across re-encode\n  in: %x\n out: %x", kind, data, re)
			}
		}
	})
}

// TestFuzzSeedsDecode keeps the seed corpus honest outside fuzz mode:
// every sample frame decodes through every entry point without panics.
func TestFuzzSeedsDecode(t *testing.T) {
	var d Decoder
	for kind, msg := range sampleMessages() {
		frame, err := Append(nil, msg)
		if err != nil {
			t.Fatal(err)
		}
		for otherKind := range WireTypes {
			dst := reflect.New(reflect.TypeOf(WireTypes[otherKind])).Interface()
			err := d.DecodeInto(frame, dst)
			if otherKind == kind && err != nil {
				t.Errorf("%s frame failed its own decoder: %v", kind, err)
			}
			if otherKind != kind && err == nil {
				t.Errorf("%s frame decoded as %s", kind, otherKind)
			}
		}
	}
}
