package binary

// Golden binary fixtures: the frame encoding of every wire type is
// pinned under api/testdata/<APIVersion>/bin/, one .bin per kind, named
// after the kind (which matches the JSON fixture name of the same type).
// Each fixture is generated from the corresponding golden JSON fixture,
// so the two codecs are pinned against the same message — replaying the
// JSON goldens through the binary codec IS the cross-codec equivalence
// check. A .bin mismatch means the binary encoding drifted; that is only
// legal with a codec Version bump.
//
// To (re)generate after an intentional, version-bumped change:
//
//	go test ./api/binary/ -run TestBinaryGolden -update

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"datamarket/api"
)

var update = flag.Bool("update", false, "rewrite golden binary fixtures")

// fixtureDirs locates the shared api/testdata fixtures from this
// subpackage.
func fixtureDirs() (jsonDir, binDir string) {
	base := filepath.Join("..", "testdata", api.APIVersion)
	return base, filepath.Join(base, "bin")
}

// loadJSONFixture decodes the golden JSON fixture for a kind into a
// fresh instance of its wire type.
func loadJSONFixture(t *testing.T, kind Kind) any {
	t.Helper()
	jsonDir, _ := fixtureDirs()
	raw, err := os.ReadFile(filepath.Join(jsonDir, kind.String()+".json"))
	if err != nil {
		t.Fatalf("reading golden JSON fixture for %s: %v", kind, err)
	}
	dst := reflect.New(reflect.TypeOf(WireTypes[kind])).Interface()
	if err := json.Unmarshal(raw, dst); err != nil {
		t.Fatalf("decoding golden JSON fixture for %s: %v", kind, err)
	}
	return dst
}

// TestBinaryGolden pins the binary frame of every wire type, generated
// from the golden JSON fixture of the same message.
func TestBinaryGolden(t *testing.T) {
	_, binDir := fixtureDirs()
	if *update {
		if err := os.MkdirAll(binDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for kind := range WireTypes {
		t.Run(kind.String(), func(t *testing.T) {
			msg := loadJSONFixture(t, kind)
			got, err := Append(nil, msg)
			if err != nil {
				t.Fatalf("encoding %s: %v", kind, err)
			}
			path := filepath.Join(binDir, kind.String()+".bin")
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden binary fixture (new wire type?): %v\n"+
					"run `go test ./api/binary/ -run TestBinaryGolden -update` and commit the fixture", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("binary encoding of %s drifted without a codec Version bump\n got: %x\nwant: %x",
					kind, got, want)
			}
		})
	}
}

// TestCrossCodecEquivalence replays every golden JSON fixture through
// both codecs: the message must survive JSON → binary → decode → JSON
// with an identical JSON rendering, so the two encodings carry exactly
// the same meaning.
func TestCrossCodecEquivalence(t *testing.T) {
	for kind := range WireTypes {
		t.Run(kind.String(), func(t *testing.T) {
			msg := loadJSONFixture(t, kind)
			wantJSON, err := json.Marshal(msg)
			if err != nil {
				t.Fatal(err)
			}
			frame, err := Append(nil, msg)
			if err != nil {
				t.Fatalf("encoding %s: %v", kind, err)
			}
			back := reflect.New(reflect.TypeOf(WireTypes[kind])).Interface()
			if err := Decode(frame, back); err != nil {
				t.Fatalf("decoding %s frame: %v", kind, err)
			}
			gotJSON, err := json.Marshal(back)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotJSON, wantJSON) {
				t.Errorf("binary round trip of %s changed the message\n got: %s\nwant: %s",
					kind, gotJSON, wantJSON)
			}
		})
	}
}

// TestBinaryGoldenDecodes pins that every committed .bin fixture still
// decodes — a fixture that encodes but cannot decode would strand every
// client on that frame.
func TestBinaryGoldenDecodes(t *testing.T) {
	_, binDir := fixtureDirs()
	for kind := range WireTypes {
		t.Run(kind.String(), func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join(binDir, kind.String()+".bin"))
			if err != nil {
				t.Fatalf("reading golden binary fixture: %v", err)
			}
			dst := reflect.New(reflect.TypeOf(WireTypes[kind])).Interface()
			if err := Decode(raw, dst); err != nil {
				t.Fatalf("decoding golden binary fixture for %s: %v", kind, err)
			}
		})
	}
}
