package binary

import (
	"encoding/binary"
	"math"

	"datamarket/api"
)

// Decoder decodes frames into reusable scratch: the returned messages
// (and every slice and pointer inside them) alias the Decoder's internal
// buffers and stay valid only until its next decode call. Reusing one
// Decoder per connection or drawing them from a sync.Pool makes the
// steady-state decode of the batch frames allocation-free — the packed
// feature columns land in one preallocated backing array with a single
// bounds check up front.
//
// A Decoder is not safe for concurrent use. The zero value is ready.
//
// Callers that need results to outlive the Decoder (the SDK's response
// path) use the package-level Decode* helpers, which decode through a
// fresh Decoder so the result owns its memory.
type Decoder struct {
	priceReq  api.PriceRequest
	batchReq  api.BatchPriceRequest
	multiReq  api.MultiBatchPriceRequest
	tradeReq  api.TradeBatchRequest
	priceResp api.PriceResponse
	batchResp api.BatchPriceResponse
	tradeResp api.TradeBatchResponse

	features     []float64 // packed features / weights backing store
	vals         []float64 // valuation backing store (Valuation pointers)
	rounds       []api.BatchPriceRound
	multiRounds  []api.MultiBatchRound
	trades       []api.TradeRequest
	ids          []string // multi-batch stream-ID table (entries reused when unchanged)
	results      []api.BatchRoundResult
	tradeResults []api.TradeBatchResult
	accepted     []bool // Accepted pointers point here
}

// grow returns s resized to n elements, reusing capacity when possible.
// Contents are not preserved.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// header validates the frame header and returns the payload.
func header(data []byte, want Kind) ([]byte, error) {
	if len(data) < headerSize {
		return nil, frameErrorf("%d bytes, shorter than the %d-byte header", len(data), headerSize)
	}
	if m := binary.LittleEndian.Uint32(data); m != Magic {
		return nil, frameErrorf("bad magic 0x%08x", m)
	}
	if v := data[4]; v != Version {
		return nil, frameErrorf("unsupported codec version %d (this build speaks %d)", v, Version)
	}
	if k := Kind(data[5]); k != want {
		return nil, frameErrorf("frame is %s, expected %s", k, want)
	}
	if r := binary.LittleEndian.Uint16(data[6:]); r != 0 {
		return nil, frameErrorf("reserved header bits 0x%04x must be zero", r)
	}
	return data[headerSize:], nil
}

// u64At / f64At read little-endian values at off; bounds are the
// caller's responsibility (batch decoders validate the full payload
// length once up front).
func u64At(b []byte, off int) uint64 {
	return binary.LittleEndian.Uint64(b[off:])
}

// f64At decodes the float at off, rejecting NaN and ±Inf — values JSON
// cannot carry either, so both codecs accept the same message set and a
// binary frame cannot smuggle a non-finite float past validation that a
// JSON body would have failed.
func f64At(b []byte, off int) (float64, error) {
	v := math.Float64frombits(u64At(b, off))
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, frameErrorf("non-finite float at offset %d", off)
	}
	return v, nil
}

// f64Column copies n packed floats at off into dst, validating
// finiteness.
func f64Column(b []byte, off, n int, dst []float64) error {
	for i := 0; i < n; i++ {
		v, err := f64At(b, off+8*i)
		if err != nil {
			return err
		}
		dst[i] = v
	}
	return nil
}

// PriceRequest decodes a KindPriceRequest frame. The returned request
// aliases the Decoder's scratch.
func (d *Decoder) PriceRequest(data []byte) (*api.PriceRequest, error) {
	p, err := header(data, KindPriceRequest)
	if err != nil {
		return nil, err
	}
	if len(p) < 13 { // flags + dim + reserve
		return nil, frameErrorf("price request payload truncated at %d bytes", len(p))
	}
	flags := p[0]
	if flags&^uint8(flagHasValuation) != 0 {
		return nil, frameErrorf("unknown request flag bits 0x%02x", flags)
	}
	dim := binary.LittleEndian.Uint32(p[1:])
	if dim > MaxDim {
		return nil, frameErrorf("dimension %d exceeds frame limit %d", dim, MaxDim)
	}
	hasVal := flags&flagHasValuation != 0
	off := 13
	expected := uint64(off) + 8*uint64(dim)
	if hasVal {
		expected += 8
	}
	if uint64(len(p)) != expected {
		return nil, frameErrorf("price request payload is %d bytes, want %d", len(p), expected)
	}
	req := &d.priceReq
	*req = api.PriceRequest{}
	if req.Reserve, err = f64At(p, 5); err != nil {
		return nil, err
	}
	if hasVal {
		d.vals = grow(d.vals, 1)
		if d.vals[0], err = f64At(p, off); err != nil {
			return nil, err
		}
		req.Valuation = &d.vals[0]
		off += 8
	}
	d.features = grow(d.features, int(dim))
	if err := f64Column(p, off, int(dim), d.features); err != nil {
		return nil, err
	}
	req.Features = d.features
	return req, nil
}

// PriceBatch decodes a KindPriceBatchRequest frame: one bounds check
// against the size implied by the k×dim header, then packed column
// copies into the Decoder's scratch. The returned request and every
// round in it alias that scratch.
func (d *Decoder) PriceBatch(data []byte) (*api.BatchPriceRequest, error) {
	p, err := header(data, KindPriceBatchRequest)
	if err != nil {
		return nil, err
	}
	if len(p) < 8 {
		return nil, frameErrorf("batch payload truncated at %d bytes", len(p))
	}
	k := binary.LittleEndian.Uint32(p)
	dim := binary.LittleEndian.Uint32(p[4:])
	if k > api.MaxBatchRounds {
		return nil, frameErrorf("batch of %d rounds exceeds limit %d", k, api.MaxBatchRounds)
	}
	if dim > MaxDim {
		return nil, frameErrorf("dimension %d exceeds frame limit %d", dim, MaxDim)
	}
	// The one bounds check: every column offset below is within p.
	expected := 8 + uint64(k)*(17+8*uint64(dim))
	if uint64(len(p)) != expected {
		return nil, frameErrorf("batch payload is %d bytes, want %d for k=%d dim=%d", len(p), expected, k, dim)
	}
	n, nd := int(k), int(dim)
	featOff := 8
	resOff := featOff + 8*n*nd
	flagOff := resOff + 8*n
	valOff := flagOff + n

	d.features = grow(d.features, n*nd)
	if err := f64Column(p, featOff, n*nd, d.features); err != nil {
		return nil, err
	}
	d.vals = grow(d.vals, n)
	d.rounds = grow(d.rounds, n)
	for i := 0; i < n; i++ {
		flags := p[flagOff+i]
		if flags&^uint8(flagHasValuation) != 0 {
			return nil, frameErrorf("round %d: unknown flag bits 0x%02x", i, flags)
		}
		rd := &d.rounds[i]
		rd.Features = d.features[i*nd : (i+1)*nd : (i+1)*nd]
		if rd.Reserve, err = f64At(p, resOff+8*i); err != nil {
			return nil, err
		}
		if flags&flagHasValuation != 0 {
			if d.vals[i], err = f64At(p, valOff+8*i); err != nil {
				return nil, err
			}
			rd.Valuation = &d.vals[i]
		} else {
			rd.Valuation = nil
		}
	}
	d.batchReq.Rounds = d.rounds
	return &d.batchReq, nil
}

// MultiBatch decodes a KindMultiBatchRequest frame. The returned request
// aliases the Decoder's scratch; stream-ID table entries are reused
// verbatim from the previous decode when unchanged, so a Flusher-shaped
// workload (same streams every batch) decodes without string
// allocations.
func (d *Decoder) MultiBatch(data []byte) (*api.MultiBatchPriceRequest, error) {
	p, err := header(data, KindMultiBatchRequest)
	if err != nil {
		return nil, err
	}
	off := 0
	u32 := func() (uint32, bool) {
		if off+4 > len(p) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(p[off:])
		off += 4
		return v, true
	}
	n, ok := u32()
	if !ok || n > api.MaxBatchRounds {
		return nil, frameErrorf("stream table of %d entries invalid (limit %d)", n, api.MaxBatchRounds)
	}
	if cap(d.ids) < int(n) {
		ids := make([]string, n)
		copy(ids, d.ids)
		d.ids = ids
	} else {
		d.ids = d.ids[:n]
	}
	for i := 0; i < int(n); i++ {
		if off+2 > len(p) {
			return nil, frameErrorf("stream table truncated at entry %d", i)
		}
		l := int(binary.LittleEndian.Uint16(p[off:]))
		off += 2
		if off+l > len(p) {
			return nil, frameErrorf("stream table entry %d truncated", i)
		}
		raw := p[off : off+l]
		off += l
		if d.ids[i] != string(raw) { // comparison does not allocate
			d.ids[i] = string(raw)
		}
	}
	k, ok := u32()
	if !ok || k > api.MaxBatchRounds {
		return nil, frameErrorf("batch of %d rounds invalid (limit %d)", k, api.MaxBatchRounds)
	}
	d.multiRounds = grow(d.multiRounds, int(k))

	// First pass: walk the rounds to size the packed feature store, so
	// the second pass decodes into stable memory.
	totalFeat := 0
	walk := off
	for i := 0; i < int(k); i++ {
		if walk+9 > len(p) {
			return nil, frameErrorf("round %d header truncated", i)
		}
		dim := binary.LittleEndian.Uint32(p[walk+4:])
		flags := p[walk+8]
		if dim > MaxDim {
			return nil, frameErrorf("round %d: dimension %d exceeds frame limit %d", i, dim, MaxDim)
		}
		if flags&^uint8(flagHasValuation) != 0 {
			return nil, frameErrorf("round %d: unknown flag bits 0x%02x", i, flags)
		}
		walk += 9 + 8 // header + reserve
		if flags&flagHasValuation != 0 {
			walk += 8
		}
		walk += 8 * int(dim)
		if walk > len(p) {
			return nil, frameErrorf("round %d truncated", i)
		}
		totalFeat += int(dim)
	}
	if walk != len(p) {
		return nil, frameErrorf("%d trailing bytes after %d rounds", len(p)-walk, k)
	}
	d.features = grow(d.features, totalFeat)
	d.vals = grow(d.vals, int(k))

	feat := 0
	for i := 0; i < int(k); i++ {
		idx := binary.LittleEndian.Uint32(p[off:])
		dim := int(binary.LittleEndian.Uint32(p[off+4:]))
		flags := p[off+8]
		off += 9
		if idx >= n {
			return nil, frameErrorf("round %d references stream table entry %d of %d", i, idx, n)
		}
		rd := &d.multiRounds[i]
		rd.StreamID = d.ids[idx]
		if rd.Reserve, err = f64At(p, off); err != nil {
			return nil, err
		}
		off += 8
		if flags&flagHasValuation != 0 {
			if d.vals[i], err = f64At(p, off); err != nil {
				return nil, err
			}
			rd.Valuation = &d.vals[i]
			off += 8
		} else {
			rd.Valuation = nil
		}
		dst := d.features[feat : feat+dim : feat+dim]
		if err := f64Column(p, off, dim, dst); err != nil {
			return nil, err
		}
		rd.Features = dst
		feat += dim
		off += 8 * dim
	}
	d.multiReq.Rounds = d.multiRounds
	return &d.multiReq, nil
}

// TradeBatch decodes a KindTradeBatchRequest frame. The returned request
// aliases the Decoder's scratch.
func (d *Decoder) TradeBatch(data []byte) (*api.TradeBatchRequest, error) {
	p, err := header(data, KindTradeBatchRequest)
	if err != nil {
		return nil, err
	}
	if len(p) < 4 {
		return nil, frameErrorf("trade batch payload truncated at %d bytes", len(p))
	}
	k := binary.LittleEndian.Uint32(p)
	if k > api.MaxBatchRounds {
		return nil, frameErrorf("batch of %d trades exceeds limit %d", k, api.MaxBatchRounds)
	}
	n := int(k)
	lenOff := 4
	noiseOff := lenOff + 4*n
	valOff := noiseOff + 8*n
	weightOff := valOff + 8*n
	if len(p) < weightOff {
		return nil, frameErrorf("trade batch payload is %d bytes, columns need %d", len(p), weightOff)
	}
	var totalW uint64
	for i := 0; i < n; i++ {
		w := binary.LittleEndian.Uint32(p[lenOff+4*i:])
		if w > MaxDim {
			return nil, frameErrorf("trade %d: %d weights exceed frame limit %d", i, w, MaxDim)
		}
		totalW += uint64(w)
	}
	if expected := uint64(weightOff) + 8*totalW; uint64(len(p)) != expected {
		return nil, frameErrorf("trade batch payload is %d bytes, want %d", len(p), expected)
	}
	d.features = grow(d.features, int(totalW))
	if err := f64Column(p, weightOff, int(totalW), d.features); err != nil {
		return nil, err
	}
	d.trades = grow(d.trades, n)
	wOff := 0
	for i := 0; i < n; i++ {
		t := &d.trades[i]
		w := int(binary.LittleEndian.Uint32(p[lenOff+4*i:]))
		t.Weights = d.features[wOff : wOff+w : wOff+w]
		wOff += w
		if t.NoiseVariance, err = f64At(p, noiseOff+8*i); err != nil {
			return nil, err
		}
		if t.Valuation, err = f64At(p, valOff+8*i); err != nil {
			return nil, err
		}
	}
	d.tradeReq.Trades = d.trades
	return &d.tradeReq, nil
}

// priceRespFromWire unpacks one response's flag byte and decision.
func priceRespFromWire(flags, dec uint8, dst *api.PriceResponse, acc *bool) error {
	if flags&^uint8(flagReserveBinding|flagHasAccepted|flagAccepted|flagHasError) != 0 {
		return frameErrorf("unknown response flag bits 0x%02x", flags)
	}
	if flags&flagAccepted != 0 && flags&flagHasAccepted == 0 {
		return frameErrorf("accepted bit set without presence bit")
	}
	decision, err := decodeDecision(dec)
	if err != nil {
		return err
	}
	dst.Decision = decision
	dst.ReserveBinding = flags&flagReserveBinding != 0
	if flags&flagHasAccepted != 0 {
		*acc = flags&flagAccepted != 0
		dst.Accepted = acc
	} else {
		dst.Accepted = nil
	}
	return nil
}

// PriceResponse decodes a KindPriceResponse frame. The returned response
// aliases the Decoder's scratch.
func (d *Decoder) PriceResponse(data []byte) (*api.PriceResponse, error) {
	p, err := header(data, KindPriceResponse)
	if err != nil {
		return nil, err
	}
	if len(p) != 26 {
		return nil, frameErrorf("price response payload is %d bytes, want 26", len(p))
	}
	resp := &d.priceResp
	*resp = api.PriceResponse{}
	d.accepted = grow(d.accepted, 1)
	if err := priceRespFromWire(p[0]&^uint8(flagHasError), p[1], resp, &d.accepted[0]); err != nil {
		return nil, err
	}
	if p[0]&flagHasError != 0 {
		return nil, frameErrorf("error bit is not valid on a single price response")
	}
	if resp.Price, err = f64At(p, 2); err != nil {
		return nil, err
	}
	if resp.Lower, err = f64At(p, 10); err != nil {
		return nil, err
	}
	if resp.Upper, err = f64At(p, 18); err != nil {
		return nil, err
	}
	return resp, nil
}

// BatchResponse decodes a KindBatchResponse frame. The returned response
// aliases the Decoder's scratch; per-round error strings are the only
// allocations, one per errored round.
func (d *Decoder) BatchResponse(data []byte) (*api.BatchPriceResponse, error) {
	p, err := header(data, KindBatchResponse)
	if err != nil {
		return nil, err
	}
	if len(p) < 4 {
		return nil, frameErrorf("batch response payload truncated at %d bytes", len(p))
	}
	k := binary.LittleEndian.Uint32(p)
	if k > api.MaxBatchRounds {
		return nil, frameErrorf("batch of %d results exceeds limit %d", k, api.MaxBatchRounds)
	}
	n := int(k)
	priceOff := 4
	lowerOff := priceOff + 8*n
	upperOff := lowerOff + 8*n
	flagOff := upperOff + 8*n
	decOff := flagOff + n
	errOff := decOff + n
	if len(p) < errOff {
		return nil, frameErrorf("batch response payload is %d bytes, columns need %d", len(p), errOff)
	}
	d.results = grow(d.results, n)
	d.accepted = grow(d.accepted, n)
	off := errOff
	for i := 0; i < n; i++ {
		r := &d.results[i]
		*r = api.BatchRoundResult{}
		flags := p[flagOff+i]
		if err := priceRespFromWire(flags&^uint8(flagHasError), p[decOff+i], &r.PriceResponse, &d.accepted[i]); err != nil {
			return nil, frameErrorf("result %d: %v", i, err)
		}
		if r.Price, err = f64At(p, priceOff+8*i); err != nil {
			return nil, err
		}
		if r.Lower, err = f64At(p, lowerOff+8*i); err != nil {
			return nil, err
		}
		if r.Upper, err = f64At(p, upperOff+8*i); err != nil {
			return nil, err
		}
		if flags&flagHasError != 0 {
			if off+4 > len(p) {
				return nil, frameErrorf("result %d error length truncated", i)
			}
			l := int(binary.LittleEndian.Uint32(p[off:]))
			off += 4
			if off+l > len(p) {
				return nil, frameErrorf("result %d error string truncated", i)
			}
			r.Error = string(p[off : off+l])
			off += l
		}
	}
	if off != len(p) {
		return nil, frameErrorf("%d trailing bytes after %d results", len(p)-off, k)
	}
	d.batchResp.Results = d.results
	return &d.batchResp, nil
}

// TradeBatchResponse decodes a KindTradeBatchResponse frame. The
// returned response aliases the Decoder's scratch.
func (d *Decoder) TradeBatchResponse(data []byte) (*api.TradeBatchResponse, error) {
	p, err := header(data, KindTradeBatchResponse)
	if err != nil {
		return nil, err
	}
	if len(p) < 4 {
		return nil, frameErrorf("trade response payload truncated at %d bytes", len(p))
	}
	k := binary.LittleEndian.Uint32(p)
	if k > api.MaxBatchRounds {
		return nil, frameErrorf("batch of %d results exceeds limit %d", k, api.MaxBatchRounds)
	}
	n := int(k)
	roundOff := 4
	colOff := roundOff + 8*n // 7 float columns follow the round column
	flagOff := colOff + 7*8*n
	decOff := flagOff + n
	errOff := decOff + n
	if len(p) < errOff {
		return nil, frameErrorf("trade response payload is %d bytes, columns need %d", len(p), errOff)
	}
	d.tradeResults = grow(d.tradeResults, n)
	off := errOff
	for i := 0; i < n; i++ {
		r := &d.tradeResults[i]
		*r = api.TradeBatchResult{}
		r.Round = int(u64At(p, roundOff+8*i))
		cols := [7]*float64{
			&r.Reserve, &r.Posted, &r.Revenue, &r.Compensation,
			&r.Profit, &r.Answer, &r.Regret,
		}
		for c, dst := range cols {
			if *dst, err = f64At(p, colOff+8*(c*n+i)); err != nil {
				return nil, err
			}
		}
		flags := p[flagOff+i]
		if flags&^uint8(flagSold|flagTradeError) != 0 {
			return nil, frameErrorf("result %d: unknown flag bits 0x%02x", i, flags)
		}
		r.Sold = flags&flagSold != 0
		if r.Decision, err = decodeDecision(p[decOff+i]); err != nil {
			return nil, err
		}
		if flags&flagTradeError != 0 {
			if off+4 > len(p) {
				return nil, frameErrorf("result %d error length truncated", i)
			}
			l := int(binary.LittleEndian.Uint32(p[off:]))
			off += 4
			if off+l > len(p) {
				return nil, frameErrorf("result %d error string truncated", i)
			}
			r.Error = string(p[off : off+l])
			off += l
		}
	}
	if off != len(p) {
		return nil, frameErrorf("%d trailing bytes after %d results", len(p)-off, k)
	}
	d.tradeResp.Results = d.tradeResults
	return &d.tradeResp, nil
}

// DecodeInto decodes a frame into dst, which must point at one of the
// codec's wire types (see WireTypes); the frame's kind must match. The
// decoded value's slices and pointers alias the Decoder's scratch. This
// is the generic entry point the server's codec shim dispatches through.
func (d *Decoder) DecodeInto(data []byte, dst any) error {
	switch m := dst.(type) {
	case *api.PriceRequest:
		v, err := d.PriceRequest(data)
		if err != nil {
			return err
		}
		*m = *v
	case *api.BatchPriceRequest:
		v, err := d.PriceBatch(data)
		if err != nil {
			return err
		}
		*m = *v
	case *api.MultiBatchPriceRequest:
		v, err := d.MultiBatch(data)
		if err != nil {
			return err
		}
		*m = *v
	case *api.TradeBatchRequest:
		v, err := d.TradeBatch(data)
		if err != nil {
			return err
		}
		*m = *v
	case *api.PriceResponse:
		v, err := d.PriceResponse(data)
		if err != nil {
			return err
		}
		*m = *v
	case *api.BatchPriceResponse:
		v, err := d.BatchResponse(data)
		if err != nil {
			return err
		}
		*m = *v
	case *api.TradeBatchResponse:
		v, err := d.TradeBatchResponse(data)
		if err != nil {
			return err
		}
		*m = *v
	default:
		return frameErrorf("type %T is not a codec wire type", dst)
	}
	return nil
}

// Decode decodes a frame into dst through a fresh Decoder, so the result
// owns its memory (nothing is shared or reused). The SDK's response path
// uses this; servers on the hot path pool Decoders instead.
func Decode(data []byte, dst any) error {
	return new(Decoder).DecodeInto(data, dst)
}
