package binary

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"datamarket/api"
)

func fp(v float64) *float64 { return &v }
func bp(v bool) *bool       { return &v }

// sampleMessages returns one representative value per wire type, keyed
// by kind. Kept in sync with WireTypes by TestSamplesCoverWireTypes.
func sampleMessages() map[Kind]any {
	return map[Kind]any{
		KindPriceRequest: &api.PriceRequest{
			Features:  []float64{0.25, -1.5, 3.75},
			Reserve:   0.125,
			Valuation: fp(2.5),
		},
		KindPriceBatchRequest: &api.BatchPriceRequest{
			Rounds: []api.BatchPriceRound{
				{Features: []float64{1, 2}, Reserve: 0.5, Valuation: fp(1.25)},
				{Features: []float64{-3, 4}, Reserve: 0},
			},
		},
		KindMultiBatchRequest: &api.MultiBatchPriceRequest{
			Rounds: []api.MultiBatchRound{
				{StreamID: "alpha", Features: []float64{1, 2, 3}, Reserve: 0.5, Valuation: fp(2)},
				{StreamID: "beta", Features: []float64{9}, Reserve: 1.5},
				{StreamID: "alpha", Features: []float64{4, 5, 6}, Reserve: 0.25},
			},
		},
		KindTradeBatchRequest: &api.TradeBatchRequest{
			Trades: []api.TradeRequest{
				{Weights: []float64{0.5, 0.5}, NoiseVariance: 0.01, Valuation: 3},
				{Weights: []float64{1}, NoiseVariance: 0.25, Valuation: 0.5},
			},
		},
		KindPriceResponse: &api.PriceResponse{
			Price: 1.75, Decision: "exploratory", Lower: 1.5, Upper: 2,
			ReserveBinding: true, Accepted: bp(true),
		},
		KindBatchResponse: &api.BatchPriceResponse{
			Results: []api.BatchRoundResult{
				{PriceResponse: api.PriceResponse{Price: 1, Decision: "skip", Lower: 0.5, Upper: 1.5}},
				{PriceResponse: api.PriceResponse{Price: 2, Decision: "conservative", Accepted: bp(false)}},
				{Error: "dimension mismatch"},
			},
		},
		KindTradeBatchResponse: &api.TradeBatchResponse{
			Results: []api.TradeBatchResult{
				{TradeResult: api.TradeResult{
					Round: 7, Reserve: 0.5, Posted: 1.25, Decision: "exploratory",
					Sold: true, Revenue: 1.25, Compensation: 0.3, Profit: 0.95,
					Answer: 2.5, Regret: 0.125,
				}},
				{Error: "weights required"},
			},
		},
	}
}

func TestSamplesCoverWireTypes(t *testing.T) {
	samples := sampleMessages()
	for kind := range WireTypes {
		if _, ok := samples[kind]; !ok {
			t.Errorf("no sample message for wire type %s", kind)
		}
	}
	for kind := range samples {
		if _, ok := WireTypes[kind]; !ok {
			t.Errorf("sample %s is not a registered wire type", kind)
		}
	}
}

// newDst returns a fresh zero value of the same pointer type as v.
func newDst(v any) any {
	return reflect.New(reflect.TypeOf(v).Elem()).Interface()
}

func TestRoundTrip(t *testing.T) {
	for kind, msg := range sampleMessages() {
		t.Run(kind.String(), func(t *testing.T) {
			buf, err := Append(nil, msg)
			if err != nil {
				t.Fatalf("Append: %v", err)
			}
			if len(buf) < headerSize {
				t.Fatalf("frame shorter than header: %d bytes", len(buf))
			}
			if got := Kind(buf[5]); got != kind {
				t.Fatalf("encoded kind = %s, want %s", got, kind)
			}
			dst := newDst(msg)
			if err := Decode(buf, dst); err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !reflect.DeepEqual(dst, msg) {
				t.Errorf("round trip mismatch:\n got %+v\nwant %+v", dst, msg)
			}
		})
	}
}

// TestRoundTripReuse decodes two different frames through one Decoder to
// catch scratch-aliasing bugs, and re-encodes the aliased result before
// the next decode (the server shim's exact access pattern).
func TestRoundTripReuse(t *testing.T) {
	var d Decoder
	first := &api.BatchPriceRequest{
		Rounds: []api.BatchPriceRound{
			{Features: []float64{1, 2, 3}, Reserve: 1, Valuation: fp(4)},
		},
	}
	second := &api.BatchPriceRequest{
		Rounds: []api.BatchPriceRound{
			{Features: []float64{9, 8}, Reserve: 0.5},
			{Features: []float64{7, 6}, Reserve: 0.25, Valuation: fp(1)},
		},
	}
	for i, msg := range []*api.BatchPriceRequest{first, second, first} {
		buf, err := Append(nil, msg)
		if err != nil {
			t.Fatalf("Append #%d: %v", i, err)
		}
		got, err := d.PriceBatch(buf)
		if err != nil {
			t.Fatalf("decode #%d: %v", i, err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("decode #%d mismatch:\n got %+v\nwant %+v", i, got, msg)
		}
		re, err := Append(nil, got)
		if err != nil {
			t.Fatalf("re-encode #%d: %v", i, err)
		}
		if !reflect.DeepEqual(re, buf) {
			t.Errorf("re-encode #%d differs from original frame", i)
		}
	}
}

func TestDecodeRejects(t *testing.T) {
	good, err := Append(nil, &api.BatchPriceRequest{
		Rounds: []api.BatchPriceRound{{Features: []float64{1, 2}, Reserve: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return f(b)
	}
	nan := mutate(func(b []byte) []byte {
		// First feature float lives after header(8) + k(4) + dim(4).
		putU64(b[16:], math.Float64bits(math.NaN()))
		return b
	})
	cases := map[string][]byte{
		"empty":         nil,
		"short header":  good[:4],
		"bad magic":     mutate(func(b []byte) []byte { b[0] = 'X'; return b }),
		"bad version":   mutate(func(b []byte) []byte { b[4] = 99; return b }),
		"wrong kind":    mutate(func(b []byte) []byte { b[5] = byte(KindTradeBatchRequest); return b }),
		"reserved bits": mutate(func(b []byte) []byte { b[6] = 1; return b }),
		"truncated":     good[:len(good)-1],
		"oversized":     append(append([]byte(nil), good...), 0),
		"huge k":        mutate(func(b []byte) []byte { putU32(b[8:], api.MaxBatchRounds+1); return b }),
		"huge dim":      mutate(func(b []byte) []byte { putU32(b[12:], MaxDim+1); return b }),
		"nan smuggling": nan,
		// The k=1 flags column sits just before the 8-byte vals column.
		"unknown flags": mutate(func(b []byte) []byte { b[len(b)-9] = 0xff; return b }),
	}
	var d Decoder
	for name, frame := range cases {
		if _, err := d.PriceBatch(frame); err == nil {
			t.Errorf("%s: decode accepted a malformed frame", name)
		} else if !strings.Contains(err.Error(), ErrFrame.Error()) {
			t.Errorf("%s: error %v does not wrap ErrFrame", name, err)
		}
	}
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}

func TestEncodeRejectsRagged(t *testing.T) {
	ragged := &api.BatchPriceRequest{
		Rounds: []api.BatchPriceRound{
			{Features: []float64{1, 2}, Reserve: 0},
			{Features: []float64{1}, Reserve: 0},
		},
	}
	if CanEncodePriceBatch(ragged.Rounds) {
		t.Error("CanEncodePriceBatch accepted a ragged batch")
	}
	if _, err := Append(nil, ragged); err == nil {
		t.Error("Append encoded a ragged batch")
	}
}

func TestEncodeRejectsOversizedStreamID(t *testing.T) {
	long := strings.Repeat("s", 1<<16)
	m := &api.MultiBatchPriceRequest{
		Rounds: []api.MultiBatchRound{{StreamID: long, Features: []float64{1}, Reserve: 0}},
	}
	if CanEncodeMultiBatch(m.Rounds) {
		t.Error("CanEncodeMultiBatch accepted a 64KB stream ID")
	}
	if _, err := Append(nil, m); err == nil {
		t.Error("Append encoded a 64KB stream ID")
	}
}

// TestDecodeUnknownDecision pins that response decoding rejects decision
// bytes outside the enum rather than inventing strings.
func TestDecodeUnknownDecision(t *testing.T) {
	buf, err := Append(nil, &api.PriceResponse{Price: 1, Decision: "skip"})
	if err != nil {
		t.Fatal(err)
	}
	buf[headerSize+1] = 0x7f
	var d Decoder
	if _, err := d.PriceResponse(buf); err == nil {
		t.Error("decode accepted an unknown decision byte")
	}
}

func TestEncodeUnknownDecision(t *testing.T) {
	if _, err := Append(nil, &api.PriceResponse{Decision: "bogus"}); err == nil {
		t.Error("Append accepted an unknown decision string")
	}
}
