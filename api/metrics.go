package api

// Server-side observability wire types (GET /v1/admin/metrics): per-route
// request counters and coarse latency summaries, maintained with atomic
// counters on the serving path so scraping them never perturbs a load
// test. Load tools (cmd/loadgen) cross-check their client-side numbers
// against this endpoint.

// MetricsBucket is one cumulative latency bucket, Prometheus-style:
// Count requests completed within LEMillis milliseconds. Requests slower
// than every bucket appear only in the endpoint's total Count (the
// implicit +Inf bucket).
type MetricsBucket struct {
	// LEMillis is the bucket's inclusive upper bound in milliseconds.
	LEMillis float64 `json:"le_ms"`
	// Count is the cumulative number of requests at or under the bound.
	Count uint64 `json:"count"`
}

// EndpointMetrics summarizes one route's traffic since server start.
type EndpointMetrics struct {
	// Endpoint is the route pattern ("POST /v1/streams/{id}/price"), or
	// "unmatched" for requests no route accepted (404/405).
	Endpoint string `json:"endpoint"`
	// Count is the number of requests served.
	Count uint64 `json:"count"`
	// Errors counts responses with a non-2xx status.
	Errors uint64 `json:"errors"`
	// LatencySumMS is the summed wall-clock handling time in milliseconds;
	// LatencySumMS / Count is the mean latency.
	LatencySumMS float64 `json:"latency_sum_ms"`
	// LatencyMaxMS is the slowest request observed.
	LatencyMaxMS float64 `json:"latency_max_ms"`
	// Buckets is the cumulative latency distribution, ascending by bound.
	Buckets []MetricsBucket `json:"buckets"`
}

// MetricsResponse reports every route that has seen traffic, sorted by
// endpoint pattern (GET /v1/admin/metrics).
type MetricsResponse struct {
	Endpoints []EndpointMetrics `json:"endpoints"`
}
