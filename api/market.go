package api

// Hosted-market wire types. A market is the full §III/§IV scenario of
// the paper behind HTTP: data owners with differential-privacy
// compensation contracts, a pricing mechanism under the reserve price
// constraint (the total compensation owed for a query), settlement, and
// a ledger. Consumers submit noisy linear queries; the server derives
// each query's reserve from the owners' contracts, prices it, settles,
// and records the transaction.

// ContractSpec selects and parameterizes a privacy compensation
// contract π(ε).
type ContractSpec struct {
	// Type is "tanh" (bounded, π = ρ·tanh(η·ε) — the paper's choice) or
	// "linear" (π = ρ·ε).
	Type string `json:"type"`
	// Rho is the saturation payment (tanh) or per-unit payment (linear);
	// required, > 0.
	Rho float64 `json:"rho"`
	// Eta is the tanh sensitivity; required for "tanh", ignored for
	// "linear".
	Eta float64 `json:"eta,omitempty"`
}

// OwnerSpec is one data owner in a market create request.
type OwnerSpec struct {
	// Value is the private data value the broker holds for the owner.
	Value float64 `json:"value"`
	// Range bounds how much Value could differ between neighboring
	// databases (the per-owner sensitivity Δᵢ ≥ 0).
	Range float64 `json:"range"`
	// Contract converts privacy leakage into compensation.
	Contract ContractSpec `json:"contract"`
}

// CreateMarketRequest stands up a hosted market. (POST /v1/markets)
//
// The pricing fields mirror CreateStreamRequest, with the mechanism's
// input dimension fixed to FeatureDim and the reserve price constraint
// always on — a market without it could sell below the compensation it
// owes its owners, violating the broker's non-negative-utility
// constraint (§II-A).
type CreateMarketRequest struct {
	// ID names the market. Required, unique among markets.
	ID string `json:"id"`
	// Owners is the data owner population. Required, non-empty.
	Owners []OwnerSpec `json:"owners"`
	// FeatureDim is the dimension n of the aggregated compensation
	// feature vector (1 ≤ FeatureDim ≤ len(Owners)); 0 defaults to
	// min(len(Owners), 10), the paper's experimental setting.
	FeatureDim int `json:"feature_dim,omitempty"`
	// Seed drives the Laplace noise in the returned answers.
	Seed uint64 `json:"seed,omitempty"`
	// Family selects the pricing family: "linear" (default),
	// "nonlinear", or "sgd".
	Family string `json:"family,omitempty"`
	// Radius, Delta, Threshold, Horizon configure the mechanism exactly
	// as in CreateStreamRequest.
	Radius    float64 `json:"radius,omitempty"`
	Delta     float64 `json:"delta,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	Horizon   int     `json:"horizon,omitempty"`
	// Model carries the family-specific model config.
	Model *ModelConfig `json:"model,omitempty"`
}

// MarketInfo describes a hosted market.
type MarketInfo struct {
	ID         string `json:"id"`
	Family     string `json:"family"`
	Owners     int    `json:"owners"`
	FeatureDim int    `json:"feature_dim"`
}

// ListMarketsResponse enumerates the hosted markets. (GET /v1/markets)
type ListMarketsResponse struct {
	Markets []MarketInfo `json:"markets"`
}

// TradeRequest is one consumer query against a market: a noisy linear
// query (weights over the owners, requested noise variance) plus the
// consumer's private valuation, which the server uses only as the
// accept/reject callback. (POST /v1/markets/{id}/trade)
type TradeRequest struct {
	// Weights has one entry per data owner.
	Weights []float64 `json:"weights"`
	// NoiseVariance is the variance of the Laplace noise added to the
	// answer; larger variance means cheaper, more private answers.
	NoiseVariance float64 `json:"noise_variance"`
	// Valuation is the consumer's market value for the answer; the trade
	// settles iff the posted price is at most this.
	Valuation float64 `json:"valuation"`
}

// TradeResult is the wire form of one ledger transaction.
type TradeResult struct {
	// Round is the market-wide 1-based trade sequence number.
	Round int `json:"round"`
	// Reserve is the query's reserve price — the total privacy
	// compensation the broker owes if the answer sells.
	Reserve float64 `json:"reserve"`
	// Posted is the price offered (the reserve itself on skip rounds).
	Posted float64 `json:"posted"`
	// Decision classifies the round: "skip", "exploratory", or
	// "conservative".
	Decision string `json:"decision"`
	// Sold reports whether the consumer accepted.
	Sold bool `json:"sold"`
	// Revenue, Compensation, Profit settle the round when sold
	// (Profit = Revenue − Compensation ≥ 0 by the reserve constraint).
	Revenue      float64 `json:"revenue,omitempty"`
	Compensation float64 `json:"compensation,omitempty"`
	Profit       float64 `json:"profit,omitempty"`
	// Answer is the noisy query answer, returned only when sold.
	Answer float64 `json:"answer,omitempty"`
	// Regret is the round's regret per Eq. (1).
	Regret float64 `json:"regret"`
}

// TradeResponse reports one settled trade.
type TradeResponse struct {
	TradeResult
}

// TradeBatchRequest settles k trades in one request
// (POST /v1/markets/{id}/trade/batch). Each query runs the full
// prepare→price→settle pipeline; the pricing rounds share one mechanism
// lock acquisition when the market's family supports batch pricing.
type TradeBatchRequest struct {
	Trades []TradeRequest `json:"trades"`
}

// TradeBatchResult is one trade of a batch: the transaction on success,
// or Error. Results align index-for-index with request trades.
type TradeBatchResult struct {
	TradeResult
	Error string `json:"error,omitempty"`
}

// TradeBatchResponse carries the per-trade results of a batch.
type TradeBatchResponse struct {
	Results []TradeBatchResult `json:"results"`
}

// LedgerResponse pages through a market's transaction ledger
// (GET /v1/markets/{id}/ledger?offset=&limit=). Entries are in trade
// order; Total is the full ledger length so clients can page.
type LedgerResponse struct {
	Offset  int           `json:"offset"`
	Total   int           `json:"total"`
	Entries []TradeResult `json:"entries"`
}

// PayoutsResponse reports cumulative privacy compensation per owner
// (GET /v1/markets/{id}/payouts). Payouts[i] is owner i's total; Total
// is their sum.
type PayoutsResponse struct {
	Payouts []float64 `json:"payouts"`
	Total   float64   `json:"total"`
}

// MarketStatsResponse aggregates a market's books and its mechanism's
// bookkeeping. (GET /v1/markets/{id}/stats)
type MarketStatsResponse struct {
	ID         string `json:"id"`
	Family     string `json:"family"`
	Owners     int    `json:"owners"`
	FeatureDim int    `json:"feature_dim"`
	// Rounds counts every trade; Sold the settled ones.
	Rounds int `json:"rounds"`
	Sold   int `json:"sold"`
	// Revenue, Compensation, Profit are the market totals.
	Revenue      float64 `json:"revenue"`
	Compensation float64 `json:"compensation"`
	Profit       float64 `json:"profit"`
	// Regret is the broker's regret bookkeeping over all trades.
	Regret RegretStats `json:"regret"`
	// Counters is the pricing mechanism's own bookkeeping; HasCounters
	// reports whether the family keeps counters at all.
	Counters    Counters `json:"counters"`
	HasCounters bool     `json:"has_counters"`
}
