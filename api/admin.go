package api

// Admin and introspection wire types.

// VersionResponse reports the server's wire contract and build
// (GET /v1/version). Clients compare API against their own APIVersion
// before relying on any other endpoint; Server and GoVersion are
// informational.
type VersionResponse struct {
	// API is the wire contract version ("v1").
	API string `json:"api"`
	// Server is the brokerd release version.
	Server string `json:"server"`
	// GoVersion is the toolchain the server was built with.
	GoVersion string `json:"go_version"`
	// Revision is the VCS revision baked into the build, when known.
	Revision string `json:"revision,omitempty"`
}

// CheckpointStats reports one checkpoint pass of the persistence
// subsystem.
type CheckpointStats struct {
	// Streams is the number of live streams examined.
	Streams int `json:"streams"`
	// Persisted counts streams whose state was written this pass.
	Persisted int `json:"persisted"`
	// SkippedClean counts streams skipped because their revision had not
	// moved since their last persist — the cheap path that lets a
	// thousand-stream registry checkpoint in microseconds when idle.
	SkippedClean int `json:"skipped_clean"`
	// SkippedPending counts streams skipped because a two-phase round
	// was awaiting feedback (snapshots are between-rounds only); they
	// are retried on the next pass.
	SkippedPending int `json:"skipped_pending"`
	// Errors counts streams whose persist failed this pass.
	Errors int `json:"errors"`
	// DurationMS is the wall-clock time of the pass.
	DurationMS float64 `json:"duration_ms"`
}

// CheckpointResponse reports an admin-triggered checkpoint pass
// (POST /v1/admin/checkpoint), plus whether the store was compacted
// afterwards (?compact=true).
type CheckpointResponse struct {
	CheckpointStats
	Compacted bool `json:"compacted"`
}

// StoreStatusResponse is the persistence ops surface
// (GET /v1/admin/store). Configured false means brokerd runs without a
// data dir — purely in-memory, nothing survives a restart — and every
// other field is absent.
type StoreStatusResponse struct {
	Configured bool `json:"configured"`
	// CheckpointInterval is the background checkpointer period.
	CheckpointInterval string `json:"checkpoint_interval,omitempty"`
	// RecoveredStreams counts the streams replayed from the store at boot.
	RecoveredStreams int `json:"recovered_streams,omitempty"`
	// LastCheckpoint reports the most recent checkpoint pass.
	LastCheckpoint *CheckpointStats `json:"last_checkpoint,omitempty"`
	// Store is the backend's own view: journal/checkpoint sizes, LSNs,
	// fsync policy, torn-tail repair.
	Store *StoreStats `json:"store,omitempty"`
}
