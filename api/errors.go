package api

import "fmt"

// ErrorCode is a stable, machine-readable error identifier. Codes are
// part of the wire contract: clients branch on them, so existing values
// never change meaning within an API version (new codes may be added).
type ErrorCode string

// Stable error codes.
const (
	// CodeInvalidRequest covers malformed bodies and domain validation
	// failures (bad dimensions, non-finite inputs, unknown families…).
	CodeInvalidRequest ErrorCode = "invalid_request"
	// CodeBodyTooLarge is returned with 413 when a request exceeds the
	// server's body cap.
	CodeBodyTooLarge ErrorCode = "body_too_large"
	// CodeNotFound: the request path matches no route at all (contrast
	// CodeStreamNotFound / CodeMarketNotFound, where the route exists
	// but the {id} resolves to nothing).
	CodeNotFound ErrorCode = "not_found"
	// CodeMethodNotAllowed: the route exists but not for this HTTP
	// method; the Allow header lists the valid ones.
	CodeMethodNotAllowed ErrorCode = "method_not_allowed"
	// CodeStreamNotFound: the {id} names no hosted stream.
	CodeStreamNotFound ErrorCode = "stream_not_found"
	// CodeStreamExists: create collided with a live stream ID.
	CodeStreamExists ErrorCode = "stream_exists"
	// CodeStreamPending: the operation (delete, snapshot, restore) is
	// refused while the stream's two-phase round awaits feedback.
	CodeStreamPending ErrorCode = "stream_pending"
	// CodeRoundPending: a quote was requested while the previous
	// two-phase round is still open.
	CodeRoundPending ErrorCode = "round_pending"
	// CodeNoRoundPending: observe arrived with no round open.
	CodeNoRoundPending ErrorCode = "no_round_pending"
	// CodeFamilyMismatch: a snapshot of one pricing family was restored
	// into a stream hosting another.
	CodeFamilyMismatch ErrorCode = "family_mismatch"
	// CodeMarketNotFound: the {id} names no hosted market.
	CodeMarketNotFound ErrorCode = "market_not_found"
	// CodeMarketExists: market create collided with a live market ID.
	CodeMarketExists ErrorCode = "market_exists"
	// CodePersistence: the request was valid but the server could not
	// make the result durable (journal append failed). Retryable.
	CodePersistence ErrorCode = "persistence_failed"
	// CodeUnavailable: the requested subsystem is not configured on this
	// server (e.g. admin checkpoint without -data-dir).
	CodeUnavailable ErrorCode = "unavailable"
	// CodeInternal is the fallback for unexpected server failures.
	CodeInternal ErrorCode = "internal"
)

// ErrorDetail is the machine-readable error payload: a stable Code to
// branch on plus a human-oriented Message.
type ErrorDetail struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
}

// ErrorResponse is the uniform error envelope: every non-2xx response
// body is {"error":{"code":…,"message":…}}.
type ErrorResponse struct {
	Error ErrorDetail `json:"error"`
}

// Error is a convenience for using a decoded envelope as a Go error.
func (e ErrorDetail) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}
