package api

// Wire-compatibility tests: the JSON encoding of every type in this
// package is pinned by a golden file under testdata/<APIVersion>/. A
// mismatch means the wire contract changed; that is only legal together
// with an APIVersion bump (which pins the new encodings under a fresh
// directory and leaves the old ones in place as the record of what the
// old version spoke). CI runs these explicitly — see the
// wire-compatibility step in .github/workflows/ci.yml.
//
// To (re)generate fixtures after an intentional, version-bumped change:
//
//	go test ./api/ -run TestWireGolden -update

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"datamarket/internal/pricing"
)

// newValueOf returns a fresh *T for a sample of type T (or *T).
func newValueOf(v any) any {
	t := reflect.TypeOf(v)
	if t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return reflect.New(t).Interface()
}

var update = flag.Bool("update", false, "rewrite golden wire fixtures")

func fptr(v float64) *float64 { return &v }

// sampleEnvelope builds a deterministic family-tagged snapshot envelope
// by running one fixed round through a real mechanism, so the golden
// file pins the full snapshot wire format a server emits.
func sampleEnvelope(t *testing.T) *Envelope {
	t.Helper()
	poster, err := pricing.NewFamilyPoster(pricing.FamilySpec{
		Family: pricing.FamilyLinear, Dim: 2, Radius: 2, Reserve: true, Threshold: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := poster.PostPrice([]float64{0.6, 0.8}, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := poster.Observe(true); err != nil {
		t.Fatal(err)
	}
	env, err := poster.SnapshotEnvelope()
	if err != nil {
		t.Fatal(err)
	}
	env.Regret = &pricing.TrackerState{CumRegret: 0.125, CumValue: 1, CumRevenue: 0.5}
	return env
}

// samples returns one fully-populated value per wire type. Every
// exported type of this package must appear here; TestWireGolden pins
// each one's JSON.
func samples(t *testing.T) map[string]any {
	t.Helper()
	return map[string]any{
		"create_stream_request": CreateStreamRequest{
			ID: "segment-a", Family: "nonlinear", Dim: 2, Radius: 2.5,
			Reserve: true, Delta: 0.1, Threshold: 0.05, Horizon: 10000,
			Model: &ModelConfig{
				Link: "identity", Map: "landmark",
				Kernel:    &KernelConfig{Type: "rbf", Gamma: 0.8},
				Landmarks: [][]float64{{0, 0}, {1, 1}},
			},
		},
		"model_config_sgd": ModelConfig{Eta0: 0.5, Margin: 1},
		"kernel_config":    KernelConfig{Type: "poly", Degree: 3, Offset: 1},
		"stream_info":      StreamInfo{ID: "segment-a", Family: "linear", Dim: 5},
		"list_streams_response": ListStreamsResponse{
			Streams: []StreamInfo{{ID: "a", Family: "linear", Dim: 3}},
		},
		"price_request": PriceRequest{
			Features: []float64{0.2, 0.4}, Reserve: 0.3, Valuation: fptr(1.1),
		},
		"quote_request":    QuoteRequest{Features: []float64{0.2, 0.4}, Reserve: 0.3},
		"observe_request":  ObserveRequest{Accepted: true},
		"observe_response": ObserveResponse{Observed: true},
		"price_response": PriceResponse{
			Price: 0.75, Decision: "exploratory", Lower: 0.5, Upper: 1,
			ReserveBinding: true, Accepted: boolPtr(true),
		},
		"batch_price_request": BatchPriceRequest{Rounds: []BatchPriceRound{
			{Features: []float64{0.1, 0.2}, Reserve: 0.05, Valuation: fptr(0.9)},
		}},
		"multi_batch_price_request": MultiBatchPriceRequest{Rounds: []MultiBatchRound{
			{StreamID: "a", Features: []float64{0.1, 0.2}, Reserve: 0.05, Valuation: fptr(0.9)},
		}},
		"batch_price_response": BatchPriceResponse{Results: []BatchRoundResult{
			{PriceResponse: PriceResponse{Price: 0.7, Decision: "conservative", Lower: 0.6, Upper: 0.8, Accepted: boolPtr(false)}},
			{Error: "feature dimension 1, stream wants 2"},
		}},
		"stats_response": StatsResponse{
			ID: "segment-a", Family: "linear", Dim: 5,
			Counters: Counters{
				Rounds: 10, Skips: 1, Exploratory: 4, Conservative: 5,
				Accepts: 6, Rejects: 3, CutsApplied: 7, CutsShallow: 1, CutsInfeasible: 1,
			},
			HasCounters: true,
			Regret: RegretStats{
				Rounds: 10, CumulativeRegret: 0.5, CumulativeValue: 9,
				CumulativeRevenue: 6.5, RegretRatio: 0.0556,
			},
		},
		"health_response": HealthResponse{Status: "ok", Streams: 3, Markets: 1},
		"version_response": VersionResponse{
			API: APIVersion, Server: "0.5.0", GoVersion: "go1.24.0", Revision: "abc123",
		},
		"error_response": ErrorResponse{Error: ErrorDetail{
			Code: CodeStreamNotFound, Message: `server: stream not found: "nope"`,
		}},
		"checkpoint_response": CheckpointResponse{
			CheckpointStats: CheckpointStats{
				Streams: 10, Persisted: 2, SkippedClean: 7, SkippedPending: 1,
				Errors: 0, DurationMS: 1.25,
			},
			Compacted: true,
		},
		"metrics_response": MetricsResponse{
			Endpoints: []EndpointMetrics{
				{
					Endpoint: "POST /v1/streams/{id}/price", Count: 42, Errors: 1,
					LatencySumMS: 12.5, LatencyMaxMS: 3.75,
					Buckets: []MetricsBucket{
						{LEMillis: 0.25, Count: 30}, {LEMillis: 1, Count: 40},
						{LEMillis: 4, Count: 42}, {LEMillis: 16, Count: 42},
						{LEMillis: 64, Count: 42}, {LEMillis: 250, Count: 42},
						{LEMillis: 1000, Count: 42},
					},
				},
				{
					Endpoint: "unmatched", Count: 1, Errors: 1,
					LatencySumMS: 0.02, LatencyMaxMS: 0.02,
					Buckets: []MetricsBucket{{LEMillis: 0.25, Count: 1}},
				},
			},
		},
		"store_status_response": StoreStatusResponse{
			Configured: true, CheckpointInterval: "5s", RecoveredStreams: 4,
			LastCheckpoint: &CheckpointStats{Streams: 4, Persisted: 4, DurationMS: 0.5},
			Store: &StoreStats{
				Backend: "journal", Dir: "/var/lib/brokerd", Entries: 4, LastLSN: 42,
				JournalBytes: 1024, JournalRecords: 8, Segments: 3, CheckpointBytes: 2048,
				Appends: 8, Compactions: 1, Commits: 3, CommitRecords: 8, CommitWaitMS: 1.5,
				// SyncErrors deliberately zero: the fixture pins that a
				// healthy disk reports "sync_errors": 0 explicitly rather
				// than omitting the key.
				SyncErrors: 0, RecoveredEntries: 4, Fsync: "always",
			},
		},
		"create_market_request": CreateMarketRequest{
			ID: "movielens",
			Owners: []OwnerSpec{
				{Value: 3.5, Range: 1, Contract: ContractSpec{Type: "tanh", Rho: 1, Eta: 10}},
				{Value: 2.0, Range: 1, Contract: ContractSpec{Type: "linear", Rho: 0.5}},
			},
			FeatureDim: 2, Seed: 7, Family: "linear", Radius: 2,
			Delta: 0.05, Threshold: 0.01, Horizon: 10000,
		},
		"market_info": MarketInfo{ID: "movielens", Family: "linear", Owners: 100, FeatureDim: 10},
		"list_markets_response": ListMarketsResponse{
			Markets: []MarketInfo{{ID: "movielens", Family: "linear", Owners: 100, FeatureDim: 10}},
		},
		"trade_request": TradeRequest{
			Weights: []float64{1, 0, 0.5}, NoiseVariance: 2, Valuation: 1.25,
		},
		"trade_response": TradeResponse{TradeResult: TradeResult{
			Round: 1, Reserve: 0.4, Posted: 0.9, Decision: "exploratory", Sold: true,
			Revenue: 0.9, Compensation: 0.4, Profit: 0.5, Answer: 3.21, Regret: 0.35,
		}},
		"trade_batch_request": TradeBatchRequest{Trades: []TradeRequest{
			{Weights: []float64{1, 1}, NoiseVariance: 1, Valuation: 0.8},
		}},
		"trade_batch_response": TradeBatchResponse{Results: []TradeBatchResult{
			{TradeResult: TradeResult{Round: 2, Reserve: 0.3, Posted: 0.3, Decision: "skip", Regret: 0.1}},
			{Error: "query has 1 weights, market has 2 owners"},
		}},
		"ledger_response": LedgerResponse{
			Offset: 0, Total: 2,
			Entries: []TradeResult{{
				Round: 1, Reserve: 0.4, Posted: 0.9, Decision: "conservative",
				Sold: true, Revenue: 0.9, Compensation: 0.4, Profit: 0.5,
				Answer: 3.21, Regret: 0,
			}},
		},
		"payouts_response": PayoutsResponse{Payouts: []float64{0.25, 0.15}, Total: 0.4},
		"market_stats_response": MarketStatsResponse{
			ID: "movielens", Family: "linear", Owners: 100, FeatureDim: 10,
			Rounds: 50, Sold: 30, Revenue: 25, Compensation: 12, Profit: 13,
			Regret: RegretStats{
				Rounds: 50, CumulativeRegret: 2, CumulativeValue: 40,
				CumulativeRevenue: 25, RegretRatio: 0.05,
			},
			Counters:    Counters{Rounds: 50, Exploratory: 20, Conservative: 29, Skips: 1, Accepts: 30, Rejects: 19, CutsApplied: 35},
			HasCounters: true,
		},
		"envelope": sampleEnvelope(t),
	}
}

func boolPtr(v bool) *bool { return &v }

// TestWireGolden pins the JSON encoding of every wire type against the
// golden files of the current APIVersion.
func TestWireGolden(t *testing.T) {
	dir := filepath.Join("testdata", APIVersion)
	if *update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for name, v := range samples(t) {
		t.Run(name, func(t *testing.T) {
			got, err := json.MarshalIndent(v, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join(dir, name+".json")
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (new wire type?): %v\n"+
					"run `go test ./api/ -run TestWireGolden -update` and commit the fixture", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("wire encoding of %s changed without an APIVersion bump\n got: %s\nwant: %s",
					name, got, want)
			}
		})
	}
}

// TestWireGoldenRoundTrip ensures every pinned encoding also decodes
// back into its type without loss — a fixture that marshals but cannot
// unmarshal would still break clients.
func TestWireGoldenRoundTrip(t *testing.T) {
	for name, v := range samples(t) {
		t.Run(name, func(t *testing.T) {
			data, err := json.Marshal(v)
			if err != nil {
				t.Fatal(err)
			}
			fresh := newValueOf(v)
			if err := json.Unmarshal(data, fresh); err != nil {
				t.Fatalf("decoding %s: %v", name, err)
			}
			back, err := json.Marshal(fresh)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, back) {
				t.Errorf("%s does not survive a decode/encode round trip\n first: %s\nsecond: %s",
					name, data, back)
			}
		})
	}
}
