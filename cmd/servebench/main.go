// Command servebench measures end-to-end serving throughput of the
// brokerd HTTP edge under both wire codecs and emits BENCH_serving.json,
// the tracked perf artifact for the serving path (`make bench-serve`
// regenerates it).
//
// Two experiments, each run once per codec (JSON and the api/binary
// compact codec):
//
//   - per-round: workers drive single-round /price calls, the
//     latency-bound number an unbatched client sees;
//   - batch: workers drive /price/batch requests of -batch rounds
//     against per-worker streams, the throughput-bound number a batching
//     client (or the SDK Flusher) sees.
//
// The headline ratios are binary-batch rounds/s (the ≥500k/node target)
// and binary-batch over JSON-per-round (the ≥10× target).
//
// Usage:
//
//	servebench -out BENCH_serving.json -duration 1s -batch 256 -dim 5
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"datamarket/api"
	"datamarket/api/binary"
	"datamarket/internal/histo"
	"datamarket/internal/randx"
	"datamarket/internal/server"
)

func main() {
	var (
		scenario = flag.String("scenario", "serving", "benchmark scenario: serving | market")
		out      = flag.String("out", "", "output JSON path (default BENCH_serving.json or BENCH_market.json)")
		duration = flag.Duration("duration", time.Second, "measured window per experiment")
		workers  = flag.Int("workers", runtime.NumCPU(), "concurrent client workers")
		batch    = flag.Int("batch", 256, "rounds per batch request (trades per batch in the market scenario)")
		dim      = flag.Int("dim", 5, "feature dimension (serving scenario)")
		owners   = flag.Int("owners", 10000, "data owner population (market scenario)")
		support  = flag.Int("support", 64, "nonzero weights per query (market scenario)")
	)
	flag.Parse()

	var err error
	switch *scenario {
	case "serving":
		if *out == "" {
			*out = "BENCH_serving.json"
		}
		err = run(*out, *duration, *workers, *batch, *dim)
	case "market":
		if *out == "" {
			*out = "BENCH_market.json"
		}
		b := *batch
		if b > 64 {
			b = 64 // 10k-owner dense-weight trades: keep a batch frame a few MB
		}
		err = runMarket(*out, *duration, *workers, b, *owners, *support)
	default:
		err = fmt.Errorf("unknown scenario %q (want serving or market)", *scenario)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "servebench:", err)
		os.Exit(1)
	}
}

type servingResult struct {
	Codec        string  `json:"codec"` // "json" | "binary"
	Mode         string  `json:"mode"`  // "per_round" | "batch"
	Batch        int     `json:"batch,omitempty"`
	Workers      int     `json:"workers"`
	Dim          int     `json:"dim"`
	DurationSec  float64 `json:"duration_sec"`
	Rounds       int64   `json:"rounds"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	// Request latency over the window (per HTTP exchange: one round in
	// per_round mode, one whole batch in batch mode).
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
}

type report struct {
	Tool      string `json:"tool"`
	GoVersion string `json:"go_version"`
	CPUs      int    `json:"cpus"`
	// BinaryBatchRoundsPerSec is the acceptance headline: served rounds/s
	// on the binary batch path (target ≥ 500k/node).
	BinaryBatchRoundsPerSec float64 `json:"binary_batch_rounds_per_sec"`
	// BinaryBatchOverJSONPerRound is the second headline: the binary
	// batch path as a multiple of the JSON per-round number (target ≥10×).
	BinaryBatchOverJSONPerRound float64 `json:"binary_batch_over_json_per_round"`
	// BinaryOverJSONPerRound compares the codecs at equal request shape.
	BinaryOverJSONPerRound float64         `json:"binary_over_json_per_round"`
	Results                []servingResult `json:"results"`
}

// codec abstracts one wire encoding for the bench loop.
type codec struct {
	name        string
	contentType string
	encode      func(scratch []byte, v any) ([]byte, error)
	decode      func(dec *binary.Decoder, data []byte, v any) error
}

var codecs = []codec{
	{
		name:        "json",
		contentType: "application/json",
		encode: func(scratch []byte, v any) ([]byte, error) {
			buf := bytes.NewBuffer(scratch[:0])
			err := json.NewEncoder(buf).Encode(v)
			return buf.Bytes(), err
		},
		decode: func(_ *binary.Decoder, data []byte, v any) error {
			return json.Unmarshal(data, v)
		},
	},
	{
		name:        "binary",
		contentType: binary.ContentType,
		encode:      binary.Append,
		decode: func(dec *binary.Decoder, data []byte, v any) error {
			return dec.DecodeInto(data, v)
		},
	},
}

func run(out string, duration time.Duration, workers, batch, dim int) error {
	rep := report{
		Tool:      "cmd/servebench",
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
	}
	byKey := map[string]float64{}
	for _, mode := range []string{"per_round", "batch"} {
		for _, cd := range codecs {
			res, err := runExperiment(cd, mode, duration, workers, batch, dim)
			if err != nil {
				return fmt.Errorf("%s %s: %w", cd.name, mode, err)
			}
			rep.Results = append(rep.Results, res)
			byKey[cd.name+"/"+mode] = res.RoundsPerSec
			fmt.Printf("%-9s %-6s  %9.0f rounds/s  p50 %7.1fµs  p99 %7.1fµs\n",
				mode, cd.name, res.RoundsPerSec, res.P50Micros, res.P99Micros)
		}
	}
	rep.BinaryBatchRoundsPerSec = round3(byKey["binary/batch"])
	if v := byKey["json/per_round"]; v > 0 {
		rep.BinaryBatchOverJSONPerRound = round3(byKey["binary/batch"] / v)
		rep.BinaryOverJSONPerRound = round3(byKey["binary/per_round"] / v)
	}
	fmt.Printf("binary batch: %.0f rounds/s (%.1fx the JSON per-round path)\n",
		rep.BinaryBatchRoundsPerSec, rep.BinaryBatchOverJSONPerRound)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// runExperiment stands up a fresh broker with one stream per worker and
// drives it for the measured window.
func runExperiment(cd codec, mode string, duration time.Duration, workers, batch, dim int) (servingResult, error) {
	reg := server.NewRegistry(0)
	ids := make([]string, workers)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench-%03d", i)
		if _, err := reg.Create(server.CreateStreamRequest{
			ID: ids[i], Dim: dim, Threshold: 0.05, Horizon: 100_000_000,
		}); err != nil {
			return servingResult{}, err
		}
	}
	ts := httptest.NewServer(server.NewServer(reg).Handler())
	defer ts.Close()
	httpc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        workers * 2,
		MaxIdleConnsPerHost: workers * 2,
	}}

	rounds := batch
	path := "/price/batch"
	if mode == "per_round" {
		rounds = 1
		path = "/price"
	}
	theta := randx.New(1).OnSphere(dim)

	var (
		total    atomic.Int64
		wg       sync.WaitGroup
		lats     = histo.New()
		firstErr atomic.Value
	)
	start := time.Now()
	deadline := start.Add(duration)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := randx.NewStream(2, uint64(w))
			url := ts.URL + "/v1/streams/" + ids[w] + path
			var (
				scratch []byte
				dec     binary.Decoder
				mine    int64
			)
			req := &api.BatchPriceRequest{Rounds: make([]api.BatchPriceRound, rounds)}
			vals := make([]float64, rounds)
			for time.Now().Before(deadline) {
				for k := range req.Rounds {
					x := r.OnSphere(dim)
					vals[k] = x.Dot(theta)
					req.Rounds[k] = api.BatchPriceRound{Features: x, Reserve: -1e9, Valuation: &vals[k]}
				}
				var in any = req
				if mode == "per_round" {
					in = &api.PriceRequest{
						Features: req.Rounds[0].Features, Reserve: -1e9, Valuation: &vals[0],
					}
				}
				body, err := cd.encode(scratch[:0], in)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				scratch = body
				t0 := time.Now()
				hreq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				hreq.Header.Set("Content-Type", cd.contentType)
				hreq.Header.Set("Accept", cd.contentType)
				resp, err := httpc.Do(hreq)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					firstErr.CompareAndSwap(nil, fmt.Errorf("status %d: %s", resp.StatusCode, raw))
					return
				}
				if mode == "per_round" {
					var pr api.PriceResponse
					err = cd.decode(&dec, raw, &pr)
				} else {
					var br api.BatchPriceResponse
					if err = cd.decode(&dec, raw, &br); err == nil && len(br.Results) != rounds {
						err = fmt.Errorf("got %d results, want %d", len(br.Results), rounds)
					}
				}
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				lats.RecordDuration(time.Since(t0))
				mine += int64(rounds)
			}
			total.Add(mine)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return servingResult{}, err
	}
	sum := lats.Summarize(1e3)
	res := servingResult{
		Codec:        cd.name,
		Mode:         mode,
		Workers:      workers,
		Dim:          dim,
		DurationSec:  round3(elapsed.Seconds()),
		Rounds:       total.Load(),
		RoundsPerSec: round3(float64(total.Load()) / elapsed.Seconds()),
		P50Micros:    sum.P50,
		P99Micros:    sum.P99,
	}
	if mode == "batch" {
		res.Batch = batch
	}
	return res, nil
}

func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}
