package main

// The market scenario: throughput of the hosted-market trade loop on a
// 10k-owner market queried with 64-support queries, the workload the
// sparse/zero-alloc/batch-settled fast path targets.
//
// Four experiments:
//
//   - dense_loop: the pre-fast-path in-process baseline, reproducing the
//     seed pipeline verbatim — dense leakages and compensations over
//     every owner, clone-and-sort aggregation, one pricing round and one
//     books-mutex acquisition per trade, dense payout updates;
//   - batch_inprocess: market.Broker.TradeBatchOutcomes — the sparse
//     pipeline with parallel prepare, one pricing lock and one books
//     lock per batch;
//   - http_trade_json: single trades through the HTTP edge over JSON;
//   - http_batch_binary: batched trades through the HTTP edge over the
//     binary codec.
//
// The headline is batch_inprocess over dense_loop (target ≥10×).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"datamarket/api"
	"datamarket/api/binary"
	"datamarket/internal/feature"
	"datamarket/internal/histo"
	"datamarket/internal/linalg"
	"datamarket/internal/market"
	"datamarket/internal/pricing"
	"datamarket/internal/privacy"
	"datamarket/internal/randx"
	"datamarket/internal/server"
)

const marketFeatureDim = 10

type marketResult struct {
	Mode         string  `json:"mode"`
	Batch        int     `json:"batch,omitempty"`
	Workers      int     `json:"workers"`
	DurationSec  float64 `json:"duration_sec"`
	Trades       int64   `json:"trades"`
	TradesPerSec float64 `json:"trades_per_sec"`
	// Latency per unit of work: one trade for the per-trade modes, one
	// whole batch for the batch modes.
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
}

type marketReport struct {
	Tool      string `json:"tool"`
	GoVersion string `json:"go_version"`
	CPUs      int    `json:"cpus"`
	Owners    int    `json:"owners"`
	Support   int    `json:"support"`
	// BatchOverDense is the acceptance headline: batched sparse trades/s
	// as a multiple of the dense per-trade seed loop (target ≥10×).
	BatchOverDense float64 `json:"batch_over_dense"`
	// HTTPBinaryBatchTradesPerSec is the served number at the wire.
	HTTPBinaryBatchTradesPerSec float64        `json:"http_binary_batch_trades_per_sec"`
	Results                     []marketResult `json:"results"`
}

// marketPopulation builds the benchmark owner population.
func marketPopulation(owners int) ([]market.Owner, error) {
	contract, err := privacy.NewTanhContract(1, 10)
	if err != nil {
		return nil, err
	}
	r := randx.New(11)
	pop := make([]market.Owner, owners)
	for i := range pop {
		pop[i] = market.Owner{ID: i, Value: r.Uniform(1, 5), Range: 4, Contract: contract}
	}
	return pop, nil
}

// marketMechanism builds the same family mechanism a hosted market uses.
func marketMechanism() (*pricing.SyncPoster, error) {
	poster, err := pricing.NewFamilyPoster(pricing.FamilySpec{
		Dim: marketFeatureDim, Reserve: true, Horizon: 100_000_000,
	})
	if err != nil {
		return nil, err
	}
	return pricing.NewSync(poster), nil
}

// tradePool is a pre-generated set of distinct sparse queries the timed
// loops cycle through. Query synthesis over a 10k-owner population costs
// more than a fast-path trade (a permutation plus several dense passes),
// so it must happen outside the measured window; the pool is read-only
// and shared across workers. The in-process batch broker runs with its
// quote cache disabled, so cycling a finite pool still measures the
// sparse prepare pipeline, not cache hits.
type tradePool struct {
	queries []*privacy.LinearQuery
	reqs    []api.TradeRequest // same weights, wire form
	vals    []float64
}

func buildTradePool(owners, support, size int) (*tradePool, error) {
	r := randx.New(8)
	p := &tradePool{
		queries: make([]*privacy.LinearQuery, size),
		reqs:    make([]api.TradeRequest, size),
		vals:    make([]float64, size),
	}
	for k := 0; k < size; k++ {
		w := make(linalg.Vector, owners)
		for _, i := range r.Perm(owners)[:support] {
			w[i] = r.Normal(0, 1)
		}
		q, err := privacy.NewLinearQueryShared(w, 1)
		if err != nil {
			return nil, err
		}
		p.queries[k] = q
		p.vals[k] = r.Uniform(0, 10)
		p.reqs[k] = api.TradeRequest{Weights: w, NoiseVariance: 1, Valuation: p.vals[k]}
	}
	return p, nil
}

// measure runs worker goroutines against loop (which reports trades done
// and latency per iteration) until the deadline and aggregates.
func measure(mode string, duration time.Duration, workers, batch int,
	loop func(w int, deadline time.Time, record func(trades int64, lat time.Duration)) error) (marketResult, error) {
	var (
		total    atomic.Int64
		lats     = histo.New()
		firstErr atomic.Value
		wg       sync.WaitGroup
	)
	start := time.Now()
	deadline := start.Add(duration)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine int64
			err := loop(w, deadline, func(trades int64, lat time.Duration) {
				mine += trades
				lats.RecordDuration(lat)
			})
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
			}
			total.Add(mine)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return marketResult{}, err
	}
	sum := lats.Summarize(1e3)
	return marketResult{
		Mode:         mode,
		Batch:        batch,
		Workers:      workers,
		DurationSec:  round3(elapsed.Seconds()),
		Trades:       total.Load(),
		TradesPerSec: round3(float64(total.Load()) / elapsed.Seconds()),
		P50Micros:    sum.P50,
		P99Micros:    sum.P99,
	}, nil
}

// runDenseLoop is the pre-fast-path baseline: every trade walks the
// dense seed pipeline and takes its own books-mutex acquisition.
func runDenseLoop(pool *tradePool, duration time.Duration, workers, owners int) (marketResult, error) {
	pop, err := marketPopulation(owners)
	if err != nil {
		return marketResult{}, err
	}
	mech, err := marketMechanism()
	if err != nil {
		return marketResult{}, err
	}
	values := make(linalg.Vector, owners)
	ranges := make(linalg.Vector, owners)
	contracts := make([]privacy.Contract, owners)
	for i, o := range pop {
		values[i] = o.Value
		ranges[i] = o.Range
		contracts[i] = o.Contract
	}
	var (
		booksMu sync.Mutex
		rng     = randx.New(7)
		payout  = make(linalg.Vector, owners)
		rounds  int64
	)
	return measure("dense_loop", duration, workers, 0,
		func(w int, deadline time.Time, record func(int64, time.Duration)) error {
			k := w * 31 // stagger workers across the pool
			for time.Now().Before(deadline) {
				t0 := time.Now()
				q := pool.queries[k%len(pool.queries)]
				valuation := pool.vals[k%len(pool.queries)]
				k++
				leak, err := q.Leakages(ranges)
				if err != nil {
					return err
				}
				comps, err := privacy.Compensations(leak, contracts)
				if err != nil {
					return err
				}
				x, _, reserve, err := feature.CompensationFeatures(comps, marketFeatureDim)
				if err != nil {
					return err
				}
				_, sold, err := mech.PriceRound(x, reserve, func(q pricing.Quote) bool {
					return pricing.Sold(q.Price, valuation)
				})
				if err != nil {
					return err
				}
				booksMu.Lock()
				if sold {
					if _, err := q.Answer(values, rng); err != nil {
						booksMu.Unlock()
						return err
					}
					if total := comps.Sum(); total > 0 {
						for i, c := range comps { // dense payout update
							payout[i] += reserve * c / total
						}
					}
				}
				rounds++
				booksMu.Unlock()
				record(1, time.Since(t0))
			}
			return nil
		})
}

// runBatchInprocess drives market.Broker.TradeBatchOutcomes — the sparse
// batched fast path — from the same worker count.
func runBatchInprocess(pool *tradePool, duration time.Duration, workers, batch, owners int) (marketResult, error) {
	pop, err := marketPopulation(owners)
	if err != nil {
		return marketResult{}, err
	}
	mech, err := marketMechanism()
	if err != nil {
		return marketResult{}, err
	}
	broker, err := market.NewBroker(market.Config{
		Owners: pop, Mechanism: mech, FeatureDim: marketFeatureDim, Seed: 7,
		LedgerPrealloc: 1 << 22,
		QuoteCacheSize: -1, // measure the sparse pipeline, not cache hits
	})
	if err != nil {
		return marketResult{}, err
	}
	return measure("batch_inprocess", duration, workers, batch,
		func(w int, deadline time.Time, record func(int64, time.Duration)) error {
			k := w * 31
			queries := make([]market.Query, batch)
			for time.Now().Before(deadline) {
				t0 := time.Now()
				for i := range queries {
					queries[i] = market.Query{
						Q:         pool.queries[k%len(pool.queries)],
						Valuation: pool.vals[k%len(pool.queries)],
					}
					k++
				}
				for _, o := range broker.TradeBatchOutcomes(queries) {
					if o.Err != nil {
						return o.Err
					}
				}
				record(int64(batch), time.Since(t0))
			}
			return nil
		})
}

// runMarketHTTP drives the hosted-market HTTP edge: per-trade JSON or
// batched binary.
func runMarketHTTP(pool *tradePool, cd codec, mode string, duration time.Duration, workers, batch, owners int) (marketResult, error) {
	srv := server.NewServer(nil)
	specs := make([]server.OwnerSpec, owners)
	r := randx.New(11)
	for i := range specs {
		specs[i] = server.OwnerSpec{
			Value: r.Uniform(1, 5), Range: 4,
			Contract: server.ContractSpec{Type: "tanh", Rho: 1, Eta: 10},
		}
	}
	if _, err := srv.Markets().Create(server.CreateMarketRequest{
		ID: "bench", Owners: specs, Seed: 7, Horizon: 100_000_000,
	}); err != nil {
		return marketResult{}, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	httpc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        workers * 2,
		MaxIdleConnsPerHost: workers * 2,
	}}
	perReq := batch
	path := "/trade/batch"
	if mode == "http_trade_json" {
		perReq = 1
		path = "/trade"
	}
	return measure(mode, duration, workers, perReq,
		func(w int, deadline time.Time, record func(int64, time.Duration)) error {
			k := w * 31
			url := ts.URL + "/v1/markets/bench" + path
			var (
				body []byte
				dec  binary.Decoder
			)
			trades := make([]api.TradeRequest, perReq)
			for time.Now().Before(deadline) {
				for i := range trades {
					trades[i] = pool.reqs[k%len(pool.reqs)]
					k++
				}
				var in any = &api.TradeBatchRequest{Trades: trades}
				if mode == "http_trade_json" {
					in = &trades[0]
				}
				var err error
				body, err = cd.encode(body[:0], in)
				if err != nil {
					return err
				}
				t0 := time.Now()
				hreq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
				if err != nil {
					return err
				}
				hreq.Header.Set("Content-Type", cd.contentType)
				hreq.Header.Set("Accept", cd.contentType)
				resp, err := httpc.Do(hreq)
				if err != nil {
					return err
				}
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					return err
				}
				if resp.StatusCode != http.StatusOK {
					return fmt.Errorf("status %d: %s", resp.StatusCode, raw)
				}
				if mode == "http_trade_json" {
					var tr api.TradeResponse
					if err := cd.decode(&dec, raw, &tr); err != nil {
						return err
					}
				} else {
					var br api.TradeBatchResponse
					if err := cd.decode(&dec, raw, &br); err != nil {
						return err
					}
					if len(br.Results) != perReq {
						return fmt.Errorf("got %d results, want %d", len(br.Results), perReq)
					}
					for _, res := range br.Results {
						if res.Error != "" {
							return fmt.Errorf("trade failed: %s", res.Error)
						}
					}
				}
				record(int64(perReq), time.Since(t0))
			}
			return nil
		})
}

// runMarket runs the market scenario and writes the report.
func runMarket(out string, duration time.Duration, workers, batch, owners, support int) error {
	rep := marketReport{
		Tool:      "cmd/servebench -scenario market",
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		Owners:    owners,
		Support:   support,
	}
	type exp struct {
		name string
		run  func() (marketResult, error)
	}
	const poolSize = 512
	pool, err := buildTradePool(owners, support, poolSize)
	if err != nil {
		return err
	}
	exps := []exp{
		{"dense_loop", func() (marketResult, error) {
			return runDenseLoop(pool, duration, workers, owners)
		}},
		{"batch_inprocess", func() (marketResult, error) {
			return runBatchInprocess(pool, duration, workers, batch, owners)
		}},
		{"http_trade_json", func() (marketResult, error) {
			return runMarketHTTP(pool, codecs[0], "http_trade_json", duration, workers, batch, owners)
		}},
		{"http_batch_binary", func() (marketResult, error) {
			return runMarketHTTP(pool, codecs[1], "http_batch_binary", duration, workers, batch, owners)
		}},
	}
	byMode := map[string]float64{}
	for _, e := range exps {
		res, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		rep.Results = append(rep.Results, res)
		byMode[res.Mode] = res.TradesPerSec
		fmt.Printf("%-18s %9.0f trades/s  p50 %8.1fµs  p99 %8.1fµs\n",
			res.Mode, res.TradesPerSec, res.P50Micros, res.P99Micros)
	}
	if v := byMode["dense_loop"]; v > 0 {
		rep.BatchOverDense = round3(byMode["batch_inprocess"] / v)
	}
	rep.HTTPBinaryBatchTradesPerSec = round3(byMode["http_batch_binary"])
	fmt.Printf("batch fast path: %.1fx the dense per-trade loop; %.0f trades/s served over binary batch\n",
		rep.BatchOverDense, rep.HTTPBinaryBatchTradesPerSec)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
