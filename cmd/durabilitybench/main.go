// Command durabilitybench measures the durability stack end to end and
// emits BENCH_durability.json, the tracked perf artifact for the
// segmented WAL (`make bench-durability` regenerates it).
//
// Two experiments:
//
//   - Throughput: concurrent pricing workers drive a persistent registry
//     while a checkpointer loop appends dirty-stream deltas, once per
//     fsync policy. The headline ratio is always/never — group commit is
//     what keeps the strictest policy within ~2× of no syncing at all,
//     because checkpoint enqueues happen under the shard lock while the
//     fsync itself runs on the store's committer goroutine.
//
//   - Recovery: a populated journal (total streams folded into the base
//     checkpoint, a varying number of dirty-stream deltas in the WAL
//     tail) is crashed without a final checkpoint and reopened. Replay
//     work scales with the WAL tail (the dirty count), not the total
//     stream count, and shard-parallel restore absorbs the rest.
//
// Usage:
//
//	durabilitybench -out BENCH_durability.json -duration 400ms \
//	    -streams 64 -workers 8 -total 1000 -dirty 0,10,100,1000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"datamarket/internal/histo"
	"datamarket/internal/linalg"
	"datamarket/internal/server"
	"datamarket/internal/store"
)

func main() {
	var (
		out      = flag.String("out", "BENCH_durability.json", "output JSON path")
		duration = flag.Duration("duration", 400*time.Millisecond, "measured window per fsync policy")
		streams  = flag.Int("streams", 64, "streams under load in the throughput experiment")
		workers  = flag.Int("workers", 8, "concurrent pricing workers")
		total    = flag.Int("total", 1000, "total streams in the recovery experiment")
		dirty    = flag.String("dirty", "0,10,100,1000", "comma-separated dirty-stream counts for the recovery experiment")
	)
	flag.Parse()

	if err := run(*out, *duration, *streams, *workers, *total, *dirty); err != nil {
		fmt.Fprintln(os.Stderr, "durabilitybench:", err)
		os.Exit(1)
	}
}

type throughputResult struct {
	Fsync        string  `json:"fsync"`
	Streams      int     `json:"streams"`
	Workers      int     `json:"workers"`
	DurationSec  float64 `json:"duration_sec"`
	Rounds       int64   `json:"rounds"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	// Per-round latency over the window (one lookup + priced round, with
	// the checkpoint enqueue riding on the same shard lock).
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
	// Group-commit shape over the window: how many records each shared
	// write (and fsync, under "always") carried.
	Commits          uint64  `json:"commits"`
	CommitRecords    uint64  `json:"commit_records"`
	RecordsPerCommit float64 `json:"records_per_commit"`
}

type recoveryResult struct {
	TotalStreams int `json:"total_streams"`
	DirtyStreams int `json:"dirty_streams"`
	// WALRecords is the journal tail replayed on top of the base
	// checkpoint — the part of recovery that scales with dirtiness.
	WALRecords int     `json:"wal_records"`
	RecoverMS  float64 `json:"recover_ms"`
}

type report struct {
	Tool      string `json:"tool"`
	GoVersion string `json:"go_version"`
	CPUs      int    `json:"cpus"`
	// AlwaysOverNeverSlowdown is the acceptance headline: sustained
	// durable throughput under -fsync always as a slowdown factor over
	// -fsync never (target: ≤ ~2×).
	AlwaysOverNeverSlowdown float64            `json:"always_over_never_slowdown"`
	Throughput              []throughputResult `json:"throughput"`
	Recovery                []recoveryResult   `json:"recovery"`
}

func run(out string, duration time.Duration, streams, workers, total int, dirtySpec string) error {
	rep := report{
		Tool:      "cmd/durabilitybench",
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
	}

	var never float64
	for _, policy := range []store.FsyncPolicy{store.FsyncAlways, store.FsyncInterval, store.FsyncNever} {
		res, err := runThroughput(policy, duration, streams, workers)
		if err != nil {
			return fmt.Errorf("throughput %s: %w", policy, err)
		}
		rep.Throughput = append(rep.Throughput, res)
		if policy == store.FsyncNever {
			never = res.RoundsPerSec
		}
		fmt.Printf("throughput  fsync=%-8s  %9.0f rounds/s  p50 %6.1fµs  p99 %6.1fµs  (%d commits, %.1f records/commit)\n",
			res.Fsync, res.RoundsPerSec, res.P50Micros, res.P99Micros, res.Commits, res.RecordsPerCommit)
	}
	if never > 0 {
		rep.AlwaysOverNeverSlowdown = round3(never / rep.Throughput[0].RoundsPerSec)
		fmt.Printf("fsync=always slowdown over fsync=never: %.2fx\n", rep.AlwaysOverNeverSlowdown)
	}

	for _, field := range strings.Split(dirtySpec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			return fmt.Errorf("bad -dirty entry %q: %w", field, err)
		}
		if n > total {
			n = total
		}
		res, err := runRecovery(total, n)
		if err != nil {
			return fmt.Errorf("recovery dirty=%d: %w", n, err)
		}
		rep.Recovery = append(rep.Recovery, res)
		fmt.Printf("recovery    total=%d dirty=%-5d  %7.1f ms  (%d WAL records replayed)\n",
			res.TotalStreams, res.DirtyStreams, res.RecoverMS, res.WALRecords)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// runThroughput drives concurrent pricing rounds against a persistent
// registry for one measured window while a checkpointer loop keeps the
// journal under sustained append load.
func runThroughput(policy store.FsyncPolicy, duration time.Duration, streams, workers int) (throughputResult, error) {
	dir, err := os.MkdirTemp("", "durabilitybench-*")
	if err != nil {
		return throughputResult{}, err
	}
	defer os.RemoveAll(dir)

	st, err := store.OpenJournal(store.JournalConfig{Dir: dir, Fsync: policy})
	if err != nil {
		return throughputResult{}, err
	}
	reg := server.NewRegistry(0)
	p, _, err := server.AttachPersistence(reg, st, server.PersistConfig{Interval: -1})
	if err != nil {
		st.Close()
		return throughputResult{}, err
	}
	ids := make([]string, streams)
	for i := range ids {
		ids[i] = fmt.Sprintf("s%04d", i)
		if _, err := reg.Create(server.CreateStreamRequest{
			ID: ids[i], Family: "linear", Dim: 4, Reserve: true, Horizon: 10_000_000,
		}); err != nil {
			return throughputResult{}, err
		}
	}

	base := st.Stats()
	var (
		rounds int64
		lats   = histo.New()
		wg     sync.WaitGroup
		stop   = make(chan struct{})
		ckpt   = make(chan struct{})
	)
	go func() {
		defer close(ckpt)
		for {
			select {
			case <-stop:
				return
			default:
				p.Checkpoint()
			}
		}
	}()
	start := time.Now()
	deadline := start.Add(duration)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			x := make(linalg.Vector, 4)
			var n int64
			for time.Now().Before(deadline) {
				t0 := time.Now()
				s, err := reg.Get(ids[rng.Intn(len(ids))])
				if err != nil {
					return
				}
				for j := range x {
					x[j] = rng.Float64()
				}
				if _, _, err := s.Price(x, rng.Float64()*0.5, rng.Float64()*2); err != nil {
					return
				}
				lats.RecordDuration(time.Since(t0))
				n++
			}
			atomic.AddInt64(&rounds, n)
		}(int64(w) + 1)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	<-ckpt
	stats := st.Stats()
	if err := p.Shutdown(); err != nil {
		return throughputResult{}, err
	}

	sum := lats.Summarize(1e3)
	res := throughputResult{
		Fsync:         string(policy),
		Streams:       streams,
		Workers:       workers,
		DurationSec:   round3(elapsed.Seconds()),
		Rounds:        rounds,
		RoundsPerSec:  round3(float64(rounds) / elapsed.Seconds()),
		P50Micros:     sum.P50,
		P99Micros:     sum.P99,
		Commits:       stats.Commits - base.Commits,
		CommitRecords: stats.CommitRecords - base.CommitRecords,
	}
	if res.Commits > 0 {
		res.RecordsPerCommit = round3(float64(res.CommitRecords) / float64(res.Commits))
	}
	return res, nil
}

// runRecovery builds a journal whose base checkpoint holds `total`
// streams and whose WAL tail holds `dirty` delta records, crashes it
// without a final checkpoint, and times the reopen+replay.
func runRecovery(total, dirty int) (recoveryResult, error) {
	dir, err := os.MkdirTemp("", "durabilitybench-*")
	if err != nil {
		return recoveryResult{}, err
	}
	defer os.RemoveAll(dir)

	st, err := store.OpenJournal(store.JournalConfig{Dir: dir, Fsync: store.FsyncNever})
	if err != nil {
		return recoveryResult{}, err
	}
	reg := server.NewRegistry(0)
	p, _, err := server.AttachPersistence(reg, st, server.PersistConfig{Interval: -1})
	if err != nil {
		st.Close()
		return recoveryResult{}, err
	}
	for i := 0; i < total; i++ {
		if _, err := reg.Create(server.CreateStreamRequest{
			ID: fmt.Sprintf("s%05d", i), Family: "linear", Dim: 4, Reserve: true, Horizon: 100000,
		}); err != nil {
			return recoveryResult{}, err
		}
	}
	// Fold every create into the base checkpoint, then dirty a subset so
	// exactly their deltas form the WAL tail recovery must replay.
	if err := p.Compact(); err != nil {
		return recoveryResult{}, err
	}
	rng := rand.New(rand.NewSource(42))
	x := make(linalg.Vector, 4)
	for i := 0; i < dirty; i++ {
		s, err := reg.Get(fmt.Sprintf("s%05d", i))
		if err != nil {
			return recoveryResult{}, err
		}
		for j := range x {
			x[j] = rng.Float64()
		}
		if _, _, err := s.Price(x, 0.1, 1.5); err != nil {
			return recoveryResult{}, err
		}
	}
	p.Checkpoint()
	// Crash: stop the persister and close the store with no final
	// checkpoint or compaction.
	p.Stop()
	if err := st.Close(); err != nil {
		return recoveryResult{}, err
	}

	start := time.Now()
	st2, err := store.OpenJournal(store.JournalConfig{Dir: dir, Fsync: store.FsyncNever})
	if err != nil {
		return recoveryResult{}, err
	}
	reg2 := server.NewRegistry(0)
	p2 := server.NewPersister(reg2, st2, server.PersistConfig{Interval: -1})
	recovered, err := p2.Recover()
	elapsed := time.Since(start)
	if err != nil {
		return recoveryResult{}, err
	}
	if recovered != total {
		return recoveryResult{}, fmt.Errorf("recovered %d streams, want %d", recovered, total)
	}
	stats := st2.Stats()
	if err := st2.Close(); err != nil {
		return recoveryResult{}, err
	}
	return recoveryResult{
		TotalStreams: total,
		DirtyStreams: dirty,
		WALRecords:   stats.JournalRecords,
		RecoverMS:    round3(float64(elapsed) / float64(time.Millisecond)),
	}, nil
}

func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}
