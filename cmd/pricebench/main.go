// Command pricebench regenerates the paper's tables and figures as text
// tables and CSV series. It runs the same experiment configurations as
// the root benchmarks, at either reduced or full (paper) sizes.
//
// Usage:
//
//	pricebench -experiment all -full -out results/
//
// Experiments: fig1, fig4, table1, fig5a, fig5b, fig5c, lemma8,
// theorem3, overhead, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"datamarket/internal/experiment"
)

func main() {
	var (
		which = flag.String("experiment", "all", "which experiment to run (fig1|fig4|table1|fig5a|fig5b|fig5c|lemma8|theorem3|overhead|all)")
		full  = flag.Bool("full", false, "run the paper's full sizes (slower)")
		out   = flag.String("out", "", "directory for CSV output (optional)")
		seed  = flag.Uint64("seed", 42, "experiment seed")
	)
	flag.Parse()

	if err := run(*which, *full, *out, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "pricebench:", err)
		os.Exit(1)
	}
}

func run(which string, full bool, out string, seed uint64) error {
	if out != "" {
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
	}
	all := which == "all"
	ran := false
	for _, exp := range []struct {
		name string
		fn   func(bool, string, uint64) error
	}{
		{"fig1", runFig1},
		{"fig4", runFig4},
		{"table1", runTable1},
		{"fig5a", runFig5a},
		{"fig5b", runFig5b},
		{"fig5c", runFig5c},
		{"lemma8", runLemma8},
		{"theorem3", runTheorem3},
		{"overhead", runOverhead},
	} {
		if all || which == exp.name {
			ran = true
			if err := exp.fn(full, out, seed); err != nil {
				return fmt.Errorf("%s: %w", exp.name, err)
			}
			fmt.Println()
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", which)
	}
	return nil
}

func scale(paperT int, full bool) int {
	if full {
		return paperT
	}
	t := paperT / 10
	if t < 1000 {
		t = paperT
	}
	return t
}

func saveCSV(out, name string, series []*experiment.Series, ratio bool) error {
	if out == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(out, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return experiment.WriteSeriesCSV(f, series, ratio)
}

func runFig1(full bool, out string, seed uint64) error {
	pts, err := experiment.RunFig1(10, 4, 21)
	if err != nil {
		return err
	}
	fmt.Println("Fig. 1: single-round regret vs posted price (value=10, reserve=4)")
	for _, p := range pts {
		bar := strings.Repeat("#", int(p.Regret*3))
		fmt.Printf("  p=%6.2f  R=%6.2f  %s\n", p.Posted, p.Regret, bar)
	}
	return nil
}

func runFig4(full bool, out string, seed uint64) error {
	cells := []struct{ n, paperT int }{
		{1, 100}, {20, 10000}, {40, 10000}, {60, 100000}, {80, 100000}, {100, 100000},
	}
	for _, c := range cells {
		T := scale(c.paperT, full)
		owners := 4 * c.n
		if owners < 100 {
			owners = 100
		}
		series, err := experiment.Fig4Cell(c.n, T, owners, 0.01, 0, seed)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("Fig. 4: cumulative regret, n=%d, T=%d", c.n, T)
		if err := experiment.WriteSeriesTable(os.Stdout, title, series, false); err != nil {
			return err
		}
		if err := saveCSV(out, fmt.Sprintf("fig4_n%d.csv", c.n), series, false); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func runTable1(full bool, out string, seed uint64) error {
	specs := []experiment.Table1Spec{
		{N: 1, T: scale(100, full)},
		{N: 20, T: scale(10000, full)},
		{N: 40, T: scale(10000, full)},
		{N: 60, T: scale(100000, full)},
		{N: 80, T: scale(100000, full)},
		{N: 100, T: scale(100000, full)},
	}
	return experiment.WriteTable1(os.Stdout, specs, 400, seed)
}

func runFig5a(full bool, out string, seed uint64) error {
	T := scale(100000, full)
	series, err := experiment.Fig5aCell(100, T, 400, 0.01, 0.2, seed)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Fig. 5(a): regret ratios, noisy linear query, n=100, T=%d (ε=0.2 tuned)", T)
	if err := experiment.WriteSeriesTable(os.Stdout, title, series, true); err != nil {
		return err
	}
	return saveCSV(out, "fig5a.csv", series, true)
}

func runFig5b(full bool, out string, seed uint64) error {
	listings := 74111
	if !full {
		listings = 20000
	}
	results, err := experiment.Fig5bCells(listings, seed)
	if err != nil {
		return err
	}
	series := experiment.SeriesOfAccommodation(results)
	title := fmt.Sprintf("Fig. 5(b): regret ratios, accommodation rental, T=%d (OLS test MSE %.3f)",
		listings, results[0].TestMSE)
	if err := experiment.WriteSeriesTable(os.Stdout, title, series, true); err != nil {
		return err
	}
	return saveCSV(out, "fig5b.csv", series, true)
}

func runFig5c(full bool, out string, seed uint64) error {
	T := scale(100000, full)
	if !full && T > 20000 {
		T = 20000
	}
	results, err := experiment.Fig5cCells(T, seed)
	if err != nil {
		return err
	}
	series := experiment.SeriesOfImpression(results)
	title := fmt.Sprintf("Fig. 5(c): regret ratios, impression pricing, T=%d", T)
	if err := experiment.WriteSeriesTable(os.Stdout, title, series, true); err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("  %s: FTRL loss %.3f, nonzero weights %d\n", r.Label, r.FitLogLoss, r.NonzeroWeights)
	}
	return saveCSV(out, "fig5c.csv", series, true)
}

func runLemma8(full bool, out string, seed uint64) error {
	res, err := experiment.RunLemma8(1200)
	if err != nil {
		return err
	}
	fmt.Println("Lemma 8 ablation: conservative-price cuts under the adversarial stream")
	fmt.Printf("  width along e2 at switch:  default %.3g, ablation %.3g\n",
		res.DefaultWidthAtSwitch, res.AblationWidthAtSwitch)
	fmt.Printf("  phase-2 cumulative regret: default %.2f, ablation %.2f\n",
		res.DefaultPhase2Regret, res.AblationPhase2Regret)
	fmt.Printf("  phase-2 exploratory rounds: default %d, ablation %d\n",
		res.DefaultExploratory, res.AblationExploratory)
	return nil
}

func runTheorem3(full bool, out string, seed uint64) error {
	horizons := []int{1000, 10000, 100000}
	if full {
		horizons = append(horizons, 1000000)
	}
	pts, err := experiment.RunTheorem3(horizons, seed)
	if err != nil {
		return err
	}
	fmt.Println("Theorem 3: 1-D cumulative regret vs horizon (ε = log₂(T)/T)")
	for _, p := range pts {
		fmt.Printf("  T=%8d  regret=%8.3f  regret/log₂T=%6.3f\n", p.T, p.CumRegret, p.CumRegret/p.LogT)
	}
	return nil
}

func runOverhead(full bool, out string, seed uint64) error {
	fmt.Println("§V-D overheads: per-round latency and mechanism state size")
	for _, n := range []int{20, 55, 100} {
		rounds := 2000
		if full {
			rounds = 20000
		}
		res, err := experiment.MeasureLinearOverhead(n, rounds, seed)
		if err != nil {
			return err
		}
		fmt.Printf("  %-32s latency %10v/round (p50 %v, p99 %v)   state %8d bytes   heap %10d bytes\n",
			res.Name, res.LatencyPerRound, res.LatencyP50, res.LatencyP99,
			res.MechanismBytes, res.ProcessBytes)
	}
	return nil
}
