// Command brokerd serves posted-price mechanisms over HTTP/JSON: many
// independent pricing streams (one per consumer segment or query family)
// behind a sharded registry. A stream is a pricing family plus a model
// config — "linear" (the ellipsoid mechanism, default), "nonlinear"
// (links, feature maps, landmark kernels), or "sgd" (the gradient
// comparator) — all hosted behind the same create/price/snapshot/restore
// surface.
//
// Usage:
//
//	brokerd -addr :8080 -shards 32
//
// Quickstart:
//
//	curl -X POST localhost:8080/v1/streams \
//	     -d '{"id":"segment-a","dim":5,"reserve":true,"horizon":10000}'
//	curl -X POST localhost:8080/v1/streams/segment-a/price \
//	     -d '{"features":[0.2,0.1,0.3,0.2,0.2],"reserve":0.4,"valuation":1.1}'
//	curl localhost:8080/v1/streams/segment-a/stats
//	curl localhost:8080/v1/streams/segment-a/snapshot > segment-a.json
//	curl -X POST localhost:8080/v1/streams/segment-a/restore -d @segment-a.json
//
// Non-linear families ride the same endpoints; only create changes:
//
//	curl -X POST localhost:8080/v1/streams -d '{
//	  "id":"hedonic","family":"nonlinear","dim":5,"reserve":true,
//	  "model":{"link":"exp"}}'
//	curl -X POST localhost:8080/v1/streams -d '{
//	  "id":"kernelized","family":"nonlinear","dim":2,
//	  "model":{"map":"landmark","kernel":{"type":"rbf","gamma":0.8},
//	           "landmarks":[[0,0],[0.5,0.5],[1,1]]}}'
//	curl -X POST localhost:8080/v1/streams -d '{
//	  "id":"baseline","family":"sgd","dim":5,"reserve":true,
//	  "model":{"eta0":0.5,"margin":1.0}}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"datamarket/internal/server"
)

func main() {
	var (
		addr   = flag.String("addr", ":8080", "listen address")
		shards = flag.Int("shards", server.DefaultShards, "registry shard count")
	)
	flag.Parse()

	if err := run(*addr, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "brokerd:", err)
		os.Exit(1)
	}
}

func run(addr string, shards int) error {
	srv := server.NewServer(server.NewRegistry(shards))
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("brokerd listening on %s (%d shards)", addr, shards)
		errCh <- httpSrv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-stop:
		log.Printf("brokerd: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
