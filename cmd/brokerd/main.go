// Command brokerd serves posted-price mechanisms over HTTP/JSON: many
// independent pricing streams (one per consumer segment or query family)
// behind a sharded registry. A stream is a pricing family plus a model
// config — "linear" (the ellipsoid mechanism, default), "nonlinear"
// (links, feature maps, landmark kernels), or "sgd" (the gradient
// comparator) — all hosted behind the same create/price/snapshot/restore
// surface.
//
// Usage:
//
//	brokerd -addr :8080 -shards 32
//
// With -data-dir, streams survive restarts: every create/restore/delete
// is journaled write-ahead into a segmented WAL, a background
// checkpointer appends deltas for streams whose state changed, and boot
// replays the checkpoint plus every WAL segment back into the registry
// (shards restore in parallel). Concurrent appenders share fsyncs via
// group commit — under -fsync always, -commit-window bounds how long a
// record may linger waiting for batch-mates — and -segment-size caps
// individual WAL files so a torn tail only ever costs the newest one:
//
//	brokerd -addr :8080 -data-dir /var/lib/brokerd \
//	        -checkpoint-interval 5s -fsync always \
//	        -commit-window 1ms -segment-size 16777216
//
// The wire contract is the public datamarket/api package and is
// versioned: GET /v1/version reports it, every non-2xx response carries
// the {"error":{"code","message"}} envelope, and the official Go SDK in
// datamarket/client wraps the whole surface (connection pooling,
// retries with backoff, auto-batching, two-phase sessions).
//
// Quickstart:
//
//	curl localhost:8080/v1/version
//	curl -X POST localhost:8080/v1/streams \
//	     -d '{"id":"segment-a","dim":5,"reserve":true,"horizon":10000}'
//	curl -X POST localhost:8080/v1/streams/segment-a/price \
//	     -d '{"features":[0.2,0.1,0.3,0.2,0.2],"reserve":0.4,"valuation":1.1}'
//	curl localhost:8080/v1/streams/segment-a/stats
//	curl localhost:8080/v1/streams/segment-a/snapshot > segment-a.json
//	curl -X POST localhost:8080/v1/streams/segment-a/restore -d @segment-a.json
//	curl -X POST localhost:8080/v1/admin/checkpoint?compact=true
//	curl localhost:8080/v1/admin/store
//
// Hosted markets run the paper's full owner/compensation/settlement
// loop behind the same edge:
//
//	curl -X POST localhost:8080/v1/markets -d '{
//	  "id":"m","owners":[
//	    {"value":3.5,"range":4,"contract":{"type":"tanh","rho":1,"eta":10}},
//	    {"value":2.0,"range":4,"contract":{"type":"tanh","rho":1,"eta":10}}]}'
//	curl -X POST localhost:8080/v1/markets/m/trade \
//	     -d '{"weights":[1,0.5],"noise_variance":2,"valuation":1.2}'
//	curl localhost:8080/v1/markets/m/ledger
//	curl localhost:8080/v1/markets/m/payouts
//	curl localhost:8080/v1/markets/m/stats
//
// Non-linear families ride the same endpoints; only create changes:
//
//	curl -X POST localhost:8080/v1/streams -d '{
//	  "id":"hedonic","family":"nonlinear","dim":5,"reserve":true,
//	  "model":{"link":"exp"}}'
//	curl -X POST localhost:8080/v1/streams -d '{
//	  "id":"kernelized","family":"nonlinear","dim":2,
//	  "model":{"map":"landmark","kernel":{"type":"rbf","gamma":0.8},
//	           "landmarks":[[0,0],[0.5,0.5],[1,1]]}}'
//	curl -X POST localhost:8080/v1/streams -d '{
//	  "id":"baseline","family":"sgd","dim":5,"reserve":true,
//	  "model":{"eta0":0.5,"margin":1.0}}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"datamarket/api"
	"datamarket/internal/server"
	"datamarket/internal/store"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		shards  = flag.Int("shards", server.DefaultShards, "registry shard count")
		dataDir = flag.String("data-dir", "", "journal directory for durable streams (empty: in-memory only)")
		ckptIvl = flag.Duration("checkpoint-interval", server.DefaultCheckpointInterval, "background checkpointer period")
		fsync   = flag.String("fsync", string(store.FsyncInterval), "journal fsync policy: always, interval, or never")
		commitW = flag.Duration("commit-window", 0, "max time a record waits for group-commit batch-mates under -fsync always (0: default 1ms, negative: commit immediately)")
		segSize = flag.Int64("segment-size", 0, "WAL segment rotation threshold in bytes (0: default 16MiB, negative: single unbounded segment)")
		verbose = flag.Bool("verbose", false, "log every request (method, path, status, latency) and checkpoint activity")
	)
	flag.Parse()

	if err := run(*addr, *shards, *dataDir, *ckptIvl, *fsync, *commitW, *segSize, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "brokerd:", err)
		os.Exit(1)
	}
}

func run(addr string, shards int, dataDir string, ckptIvl time.Duration, fsync string, commitW time.Duration, segSize int64, verbose bool) error {
	reg := server.NewRegistry(shards)
	srv := server.NewServer(reg)

	var persister *server.Persister
	if dataDir != "" {
		policy, err := store.ParseFsyncPolicy(fsync)
		if err != nil {
			return err
		}
		st, err := store.OpenJournal(store.JournalConfig{
			Dir: dataDir, Fsync: policy, CommitWindow: commitW, SegmentSize: segSize,
		})
		if err != nil {
			return err
		}
		cfg := server.PersistConfig{Interval: ckptIvl}
		if verbose {
			cfg.Logf = log.Printf
		}
		p, recovered, err := server.AttachPersistence(reg, st, cfg)
		if err != nil {
			st.Close()
			return fmt.Errorf("recovering from %s: %w", dataDir, err)
		}
		persister = p
		srv.SetPersister(p)
		log.Printf("brokerd: recovered %d stream(s) from %s (fsync=%s, checkpoint every %s)",
			recovered, dataDir, policy, ckptIvl)
	}

	handler := srv.Handler()
	if verbose {
		handler = server.WithRequestLog(handler, log.Printf)
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("brokerd %s (API %s) listening on %s (%d shards)",
			server.Version, api.APIVersion, addr, shards)
		errCh <- httpSrv.ListenAndServe()
	}()

	shutdown := func() error {
		// The HTTP edge drains first so the final checkpoint sees no
		// in-flight rounds, then the persister takes its final pass,
		// compacts, and closes the store. Both error signals matter — a
		// drain timeout must not mask an uncaptured-state report.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := httpSrv.Shutdown(ctx)
		if persister != nil {
			err = errors.Join(err, persister.Shutdown())
		}
		return err
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if persister != nil {
			err = errors.Join(err, persister.Shutdown())
		}
		return err
	case sig := <-stop:
		log.Printf("brokerd: %v, shutting down", sig)
		if err := shutdown(); err != nil {
			return err
		}
		if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
