// Command datamarket-lint runs the repo's custom static-analysis suite
// (internal/analysis/passes) over the named packages and exits non-zero
// if any invariant is violated.
//
// Usage:
//
//	go run ./cmd/datamarket-lint ./...
//	go run ./cmd/datamarket-lint -list
//	go run ./cmd/datamarket-lint -only errcode,floatguard ./...
//
// Findings print as file:line:col: message (analyzer). Suppress a
// finding with a //lint:ignore <analyzer> <reason> comment on the
// flagged line or directly above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"datamarket/internal/analysis"
	"datamarket/internal/analysis/passes/errcode"
	"datamarket/internal/analysis/passes/floatguard"
	"datamarket/internal/analysis/passes/lockdiscipline"
	"datamarket/internal/analysis/passes/snapshotfields"
	"datamarket/internal/analysis/passes/wirecontract"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		errcode.Analyzer,
		floatguard.Analyzer,
		lockdiscipline.Analyzer,
		snapshotfields.Analyzer,
		wirecontract.Analyzer,
	}
}

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	dir := flag.String("C", "", "change to this directory before loading packages")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: datamarket-lint [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := all
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "datamarket-lint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := analysis.Load(analysis.LoadConfig{Dir: *dir}, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datamarket-lint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(prog, selected)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datamarket-lint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s (%s)\n", prog.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "datamarket-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
