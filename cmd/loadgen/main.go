// Command loadgen is the scenario engine: it replays the paper's
// evaluation datasets (§VI) against a live brokerd entirely through the
// public SDK and emits BENCH_loadgen.json, the tracked perf artifact of
// the serving stack under dataset-shaped load (`make bench-loadgen`
// regenerates it; `make loadgen-smoke` is the fast CI variant).
//
// Four scenarios (-scenario, default all):
//
//   - accommodation: Airbnb listings grouped into city × room-type
//     pricing streams, priced via the SDK Flusher (coalesced
//     multi-stream batches), reserve constraint on;
//   - impression: Avazu hashed-CTR vectors priced in high-fanout
//     /price/batch calls against a stream population with Zipf-skewed
//     popularity;
//   - ratings: MovieLens raters as the owners of one hosted market,
//     traded against with sparse skew-chosen queries via /trade/batch;
//   - mixed: all three interleaved 40/40/20 from every worker.
//
// Each scenario runs under an open-loop (target-rate,
// coordinated-omission-safe) and a closed-loop (fixed-concurrency)
// driver (-mode both|open|closed). Every scenario has a deterministic
// synthetic fallback, so no raw dataset files are needed; -airbnb,
// -avazu, and -movielens feed real CSVs when present.
//
// With -addr unset, loadgen hosts an in-process brokerd (the
// self-contained benchmark); point -addr at a running broker to load
// it over real sockets.
//
// The default open-loop rate is deliberately sustainable by every
// scenario, so the artifact tracks latency-at-load; raise -rate to
// push a scenario into overload and the coordinated-omission-safe
// driver reports the queueing delay honestly instead of hiding it.
//
// Usage:
//
//	loadgen -duration 2s -out BENCH_loadgen.json
//	loadgen -smoke            # CI: tiny sizes, asserts a clean run
//	loadgen -addr http://localhost:8080 -scenario impression -rate 2000 -binary
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"datamarket/client"
	"datamarket/internal/loadgen"
	"datamarket/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "", "brokerd base URL (default: host an in-process broker)")
		scenario    = flag.String("scenario", "all", "scenario: all | accommodation | impression | ratings | mixed")
		mode        = flag.String("mode", "both", "driver mode: both | open | closed")
		duration    = flag.Duration("duration", 2*time.Second, "window per scenario per mode")
		rate        = flag.Float64("rate", 100, "open-loop target rate (ops/s; one op = one batched call)")
		concurrency = flag.Int("concurrency", runtime.NumCPU(), "closed-loop worker count")
		outstanding = flag.Int("max-outstanding", 4096, "open-loop in-flight op bound")
		batch       = flag.Int("batch", 64, "rounds/trades per batched call")
		skew        = flag.Float64("skew", 1, "stream/owner popularity skew (0 = uniform)")
		streams     = flag.Int("streams", 32, "impression stream fan-out")
		listings    = flag.Int("listings", 2000, "accommodation table size")
		users       = flag.Int("users", 400, "ratings market owner population")
		support     = flag.Int("support", 16, "nonzero weights per market query")
		seed        = flag.Uint64("seed", 1, "generator seed")
		binary      = flag.Bool("binary", false, "use the binary wire codec for SDK hot calls")
		airbnbCSV   = flag.String("airbnb", "", "real Airbnb listings CSV (optional)")
		avazuCSV    = flag.String("avazu", "", "real Avazu impressions CSV (optional)")
		mlCSV       = flag.String("movielens", "", "real MovieLens ratings CSV (optional)")
		out         = flag.String("out", "", "report path (default BENCH_loadgen.json; none in -smoke)")
		smoke       = flag.Bool("smoke", false, "CI smoke: tiny synthetic sizes, short windows, fail on any error beyond -error-budget")
		errBudget   = flag.Int64("error-budget", 0, "max tolerated failed ops in -smoke")
	)
	flag.Parse()
	if err := run(config{
		addr: *addr, scenario: *scenario, mode: *mode, duration: *duration,
		rate: *rate, concurrency: *concurrency, outstanding: *outstanding,
		batch: *batch, skew: *skew, streams: *streams, listings: *listings,
		users: *users, support: *support, seed: *seed, binary: *binary,
		airbnbCSV: *airbnbCSV, avazuCSV: *avazuCSV, mlCSV: *mlCSV,
		out: *out, smoke: *smoke, errBudget: *errBudget,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type config struct {
	addr, scenario, mode       string
	duration                   time.Duration
	rate                       float64
	concurrency, outstanding   int
	batch                      int
	skew                       float64
	streams, listings          int
	users, support             int
	seed                       uint64
	binary                     bool
	airbnbCSV, avazuCSV, mlCSV string
	out                        string
	smoke                      bool
	errBudget                  int64
}

func (c *config) scenarioConfig() loadgen.Config {
	cfg := loadgen.Config{
		Seed: c.seed, Skew: c.skew, Batch: c.batch,
		Listings: c.listings, Streams: c.streams,
		Users: c.users, Support: c.support,
		AirbnbCSV: c.airbnbCSV, AvazuCSV: c.avazuCSV, MovieLensCSV: c.mlCSV,
	}
	if c.smoke {
		// Tiny deterministic sizes: all scenarios, both drivers, ~5s wall
		// clock total, no CSVs required.
		cfg.Batch = 8
		cfg.Listings = 60
		cfg.Streams = 4
		cfg.PoolSize = 256
		cfg.Users = 40
		cfg.Movies = 80
		cfg.Support = 4
	}
	return cfg
}

func run(c config) error {
	if c.smoke {
		if c.duration == 2*time.Second {
			c.duration = 250 * time.Millisecond
		}
		if c.rate == 100 {
			c.rate = 300
		}
		if c.concurrency > 4 {
			c.concurrency = 4
		}
	}
	base := c.addr
	if base == "" {
		ts := httptest.NewServer(server.NewServer(nil).Handler())
		defer ts.Close()
		base = ts.URL
		fmt.Printf("hosting in-process brokerd at %s\n", base)
	}
	var opts []client.Option
	if c.binary {
		opts = append(opts, client.WithBinary())
	}
	sdk, err := client.New(base, opts...)
	if err != nil {
		return err
	}

	names := loadgen.ScenarioNames
	if c.scenario != "all" {
		names = []string{c.scenario}
	}
	rep := &loadgen.Report{
		Tool:      "cmd/loadgen",
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		Binary:    c.binary,
	}
	ctx := context.Background()
	var failed int64
	for _, name := range names {
		wl, err := loadgen.ByName(name, c.scenarioConfig())
		if err != nil {
			return err
		}
		if err := wl.Setup(ctx, sdk); err != nil {
			return fmt.Errorf("%s setup: %w", name, err)
		}
		sr := &loadgen.ScenarioReport{Scenario: name}
		if c.mode == "both" || c.mode == "open" {
			outcome, err := loadgen.OpenLoop(ctx, wl, loadgen.OpenLoopConfig{
				Rate: c.rate, Duration: c.duration, MaxOutstanding: c.outstanding,
			})
			if err != nil {
				return fmt.Errorf("%s open loop: %w", name, err)
			}
			failed += outcome.ErrorTotal()
			sr.Results = append(sr.Results, loadgen.ResultOf(outcome))
			printResult(name, outcome)
		}
		if c.mode == "both" || c.mode == "closed" {
			outcome, err := loadgen.ClosedLoop(ctx, wl, loadgen.ClosedLoopConfig{
				Concurrency: c.concurrency, Duration: c.duration,
			})
			if err != nil {
				return fmt.Errorf("%s closed loop: %w", name, err)
			}
			failed += outcome.ErrorTotal()
			sr.Results = append(sr.Results, loadgen.ResultOf(outcome))
			printResult(name, outcome)
		}
		if closer, ok := wl.(io.Closer); ok {
			if err := closer.Close(); err != nil {
				return fmt.Errorf("%s close: %w", name, err)
			}
		}
		sum, err := wl.Summary(ctx)
		if err != nil {
			return fmt.Errorf("%s summary: %w", name, err)
		}
		sr.Summary = sum
		if sum.Rounds > 0 || sum.Trades > 0 {
			fmt.Printf("%-14s summary: %d rounds, %d trades, regret ratio %.4f, revenue %.1f, market profit %.1f\n",
				name, sum.Rounds, sum.Trades, sum.RegretRatio,
				sum.CumulativeRevenue, sum.MarketProfit)
		}
		rep.Scenarios = append(rep.Scenarios, sr)
	}

	if c.out == "" && !c.smoke {
		c.out = "BENCH_loadgen.json"
	}
	if c.out != "" {
		if err := rep.WriteFile(c.out); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", c.out)
	}
	if c.smoke && failed > c.errBudget {
		return fmt.Errorf("smoke: %d failed ops exceed the error budget of %d", failed, c.errBudget)
	}
	return nil
}

func printResult(name string, o *loadgen.Outcome) {
	s := o.Latency.Summarize(1e3)
	extra := ""
	if o.Dropped > 0 {
		extra = fmt.Sprintf("  dropped %d", o.Dropped)
	}
	if n := o.ErrorTotal(); n > 0 {
		extra += fmt.Sprintf("  ERRORS %d %v", n, o.Errors)
	}
	fmt.Printf("%-14s %-6s  %9.0f units/s  %8.0f ops/s  p50 %8.1fµs  p99 %8.1fµs  p999 %8.1fµs%s\n",
		name, o.Mode,
		float64(o.Units)/o.Elapsed.Seconds(),
		float64(o.Issued)/o.Elapsed.Seconds(),
		s.P50, s.P99, s.P999, extra)
}
