// Command marketsim runs an end-to-end personal data market simulation
// (Fig. 2 of the paper): synthetic MovieLens-style data owners, a broker
// pricing noisy linear queries with the reserve-constrained ellipsoid
// mechanism, and a stream of data consumers. It prints the market summary
// and a transaction sample.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"datamarket/internal/dataset"
	"datamarket/internal/histo"
	"datamarket/internal/linalg"
	"datamarket/internal/market"
	"datamarket/internal/pricing"
	"datamarket/internal/privacy"
	"datamarket/internal/randx"
)

func main() {
	var (
		owners  = flag.Int("owners", 200, "number of data owners")
		dim     = flag.Int("dim", 20, "feature dimension n")
		rounds  = flag.Int("rounds", 5000, "number of query rounds")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		verbose = flag.Bool("v", false, "print every 500th transaction")
	)
	flag.Parse()
	if err := run(*owners, *dim, *rounds, *seed, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "marketsim:", err)
		os.Exit(1)
	}
}

func run(ownerCount, n, rounds int, seed uint64, verbose bool) error {
	// Data owners from a synthetic MovieLens-style rating corpus.
	ratings, err := dataset.GenerateRatings(dataset.MovieLensConfig{
		Users: ownerCount, Movies: 500, RatingsPerUser: 20, Seed: seed,
	})
	if err != nil {
		return err
	}
	profiles := dataset.UserProfiles(ratings)
	values, ranges := dataset.OwnerValues(profiles)
	contract, err := privacy.NewTanhContract(1, 1)
	if err != nil {
		return err
	}
	owners := make([]market.Owner, len(profiles))
	for i := range owners {
		owners[i] = market.Owner{
			ID: int(profiles[i].UserID), Value: values[i], Range: ranges[i], Contract: contract,
		}
	}

	mech, err := pricing.New(n, 2*math.Sqrt(float64(n)),
		pricing.WithReserve(),
		pricing.WithThreshold(pricing.DefaultThreshold(n, rounds, 0)))
	if err != nil {
		return err
	}
	broker, err := market.NewBroker(market.Config{
		Owners: owners, Mechanism: mech, FeatureDim: n, Seed: seed, KeepRecords: false,
	})
	if err != nil {
		return err
	}

	// Hidden market value model for the consumer stream.
	setup := randx.NewStream(seed, 99)
	theta := setup.NormalVector(n, 1)
	for i := range theta {
		theta[i] = math.Abs(theta[i])
	}
	theta.Normalize()
	theta.Scale(math.Sqrt(2 * float64(n)))
	consumers, err := market.NewConsumerModel(market.ConsumerConfig{
		Owners: owners, FeatureDim: n, Theta: linalg.Vector(theta),
	})
	if err != nil {
		return err
	}

	rng := randx.NewStream(seed, 7)
	lats := histo.New()
	var sold, skipped int
	for t := 0; t < rounds; t++ {
		q, err := consumers.NextQuery(rng)
		if err != nil {
			return err
		}
		t0 := time.Now()
		tx, err := broker.Trade(q)
		if err != nil {
			return err
		}
		lats.RecordDuration(time.Since(t0))
		if tx.Sold {
			sold++
		}
		if tx.Decision == pricing.DecisionSkip {
			skipped++
		}
		if verbose && t%500 == 0 {
			fmt.Printf("round %5d: %-12s posted %6.3f reserve %6.3f value %6.3f sold=%v\n",
				tx.Round, tx.Decision, tx.Posted, tx.Reserve, tx.MarketValue, tx.Sold)
		}
	}

	tr := broker.Tracker()
	fmt.Println("=== personal data market summary ===")
	fmt.Printf("owners:              %d\n", broker.Owners())
	fmt.Printf("feature dimension:   %d\n", broker.FeatureDim())
	fmt.Printf("rounds:              %d (sold %d, skipped %d)\n", rounds, sold, skipped)
	fmt.Printf("total revenue:       %.2f\n", broker.TotalRevenue())
	fmt.Printf("total broker profit: %.2f\n", broker.TotalProfit())
	fmt.Printf("cumulative regret:   %.2f\n", tr.CumulativeRegret())
	fmt.Printf("regret ratio:        %.2f%%\n", 100*tr.RegretRatio())
	c := mech.Counters()
	fmt.Printf("mechanism counters:  exploratory %d, conservative %d, cuts %d\n",
		c.Exploratory, c.Conservative, c.CutsApplied)
	ls := lats.Summarize(1e3)
	fmt.Printf("trade latency:       p50 %.1fµs  p99 %.1fµs  max %.1fµs\n",
		ls.P50, ls.P99, ls.Max)
	// Top-compensated owners.
	fmt.Println("sample owner payouts:")
	for i := 0; i < 5 && i < broker.Owners(); i++ {
		p, err := broker.OwnerPayout(i)
		if err != nil {
			return err
		}
		fmt.Printf("  owner %4d: %.4f\n", owners[i].ID, p)
	}
	return nil
}
