// Command datagen emits synthetic datasets in the schemas of the paper's
// three evaluation corpora (MovieLens ratings, Airbnb listings, Avazu
// impressions) so the experiment pipelines can be exercised, inspected,
// or replayed with real files later.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"datamarket/internal/dataset"
)

func main() {
	var (
		out      = flag.String("out", "data", "output directory")
		which    = flag.String("dataset", "all", "dataset to generate (movielens|airbnb|avazu|all)")
		users    = flag.Int("users", 1000, "MovieLens: number of users")
		listings = flag.Int("listings", 5000, "Airbnb: number of listings")
		imps     = flag.Int("impressions", 20000, "Avazu: number of impressions")
		seed     = flag.Uint64("seed", 1, "generator seed")
	)
	flag.Parse()
	if err := run(*out, *which, *users, *listings, *imps, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(out, which string, users, listings, imps int, seed uint64) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	all := which == "all"
	ran := false
	if all || which == "movielens" {
		ran = true
		ratings, err := dataset.GenerateRatings(dataset.MovieLensConfig{
			Users: users, Movies: 2000, RatingsPerUser: 30, Seed: seed,
		})
		if err != nil {
			return err
		}
		if err := writeFile(filepath.Join(out, "ratings.csv"), func(f *os.File) error {
			return dataset.WriteRatings(f, ratings)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d ratings from %d users)\n",
			filepath.Join(out, "ratings.csv"), len(ratings), users)
	}
	if all || which == "airbnb" {
		ran = true
		ls, _, _, err := dataset.GenerateListings(dataset.AirbnbConfig{
			Count: listings, Seed: seed, NoiseStd: 0.475,
		})
		if err != nil {
			return err
		}
		if err := writeFile(filepath.Join(out, "listings.csv"), func(f *os.File) error {
			return dataset.WriteListings(f, ls)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d listings)\n", filepath.Join(out, "listings.csv"), len(ls))
	}
	if all || which == "avazu" {
		ran = true
		stream, err := dataset.NewAvazuStream(dataset.AvazuConfig{
			Count: imps, HashDim: 128, ActiveWeights: 21, Seed: seed,
		})
		if err != nil {
			return err
		}
		rows, _ := stream.GenerateAll()
		if err := writeFile(filepath.Join(out, "impressions.csv"), func(f *os.File) error {
			return dataset.WriteImpressions(f, rows)
		}); err != nil {
			return err
		}
		clicks := 0
		for _, im := range rows {
			if im.Click {
				clicks++
			}
		}
		fmt.Printf("wrote %s (%d impressions, CTR %.3f)\n",
			filepath.Join(out, "impressions.csv"), len(rows), float64(clicks)/float64(len(rows)))
	}
	if !ran {
		return fmt.Errorf("unknown dataset %q", which)
	}
	return nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
